// Command hmcservd is the survivable simulation job service: a long-lived
// multi-tenant daemon that accepts simulation jobs (single benchmark runs,
// evaluation sweeps, soak campaigns) over HTTP/JSON, schedules them onto a
// bounded slot pool with per-tenant quotas and priority preemption, and
// records every job state transition in an fsync'd ledger so a crashed or
// drained daemon restarts into exactly the queue it left behind.
//
// Usage:
//
//	hmcservd -state /var/lib/hmcservd                # defaults: 2 slots, local sweeps
//	hmcservd -state dir -slots 4 -job-timeout 30m    # watchdog on every job
//	hmcservd -state dir -max-queued 64 -rate 10 -burst 20  # per-tenant quotas
//	hmcservd -state dir -serve :7333 -token secret   # sweeps go to hmcsweepd workers
//
// The HTTP API (see internal/jobserv):
//
//	POST   /api/v1/jobs              submit {"tenant":..,"priority":..,"spec":{..}}
//	GET    /api/v1/jobs?tenant=      list jobs
//	GET    /api/v1/jobs/{id}         poll one job
//	GET    /api/v1/jobs/{id}/wait    long-poll until terminal
//	GET    /api/v1/jobs/{id}/result  fetch the result document
//	DELETE /api/v1/jobs/{id}         cancel
//	GET    /api/v1/status            daemon snapshot
//
// SIGTERM and SIGINT drain gracefully: admission stops (submits get 503),
// running jobs finish or park at their next safe point, and the ledger is
// left ready for the next daemon to adopt. SIGKILL is survivable by
// design: the next start replays the ledger, re-runs interrupted jobs
// (sweeps and soaks resume from their checkpoints) and produces results
// byte-identical to an uninterrupted run. SIGUSR1 prints a status
// snapshot to stderr.
//
// Exit codes: 0 clean shutdown, 1 usage/configuration error, 2 runtime
// failure.
package main

import (
	"context"
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hmccoal/internal/dsweep"
	"hmccoal/internal/jobserv"
	"hmccoal/internal/netchaos"
)

const (
	exitUsage = 1
	exitRun   = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, outw, errw io.Writer) int {
	fs := flag.NewFlagSet("hmcservd", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		listen       = fs.String("listen", "127.0.0.1:7444", "HTTP listen address for the job API")
		state        = fs.String("state", "", "state directory: job ledger, results, checkpoints (required)")
		slots        = fs.Int("slots", 2, "jobs executing concurrently")
		sweepWorkers = fs.Int("sweep-workers", 0, "per-sweep-job simulation pool size (0 = all cores)")
		maxQueue     = fs.Int("max-queue", 0, "daemon-wide pending-job cap (0 = default)")
		maxQueued    = fs.Int("max-queued", 0, "per-tenant queued-job quota (0 = unlimited)")
		maxRunning   = fs.Int("max-running", 0, "per-tenant running-job quota (0 = unlimited)")
		rate         = fs.Float64("rate", 0, "per-tenant submit rate limit in jobs/second (0 = unlimited)")
		burst        = fs.Int("burst", 0, "submit rate burst size (with -rate; 0 = 1)")
		jobTimeout   = fs.Duration("job-timeout", 0, "per-attempt watchdog: a job running longer fails with a structured timeout (0 = off)")
		drainTimeout = fs.Duration("drain-timeout", time.Minute, "how long a SIGTERM drain waits for running jobs to finish or park")

		serve       = fs.String("serve", "", "also coordinate distributed sweeps: listen on this TCP address for hmcsweepd workers and ship sweep jobs to them")
		lease       = fs.Duration("lease", dsweep.DefaultLease, "with -serve: a worker silent this long after taking a job group is presumed dead and the group is requeued")
		token       = fs.String("token", "", "with -serve: shared secret workers must present (empty accepts any worker)")
		maxAttempts = fs.Int("max-attempts", dsweep.DefaultMaxAttempts, "with -serve: workers that may be lost on one job group before the group fails")
		chaos       = fs.String("chaos", "", "with -serve: deterministic network-fault injection on worker connections (testing)")
		tlsCert     = fs.String("tls-cert", "", "with -serve: PEM certificate; worker connections are TLS-wrapped (requires -tls-key)")
		tlsKey      = fs.String("tls-key", "", "with -serve: PEM private key for -tls-cert")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return exitUsage
	}
	usageErr := func(err error) int {
		fmt.Fprintln(errw, "hmcservd:", err)
		return exitUsage
	}
	runErr := func(err error) int {
		fmt.Fprintln(errw, "hmcservd:", err)
		return exitRun
	}
	if *state == "" {
		return usageErr(errors.New("-state is required"))
	}
	if *slots < 1 {
		return usageErr(fmt.Errorf("-slots must be ≥ 1, got %d", *slots))
	}
	if *maxQueue < 0 || *maxQueued < 0 || *maxRunning < 0 || *burst < 0 {
		return usageErr(errors.New("quota flags must be ≥ 0"))
	}
	if *rate < 0 {
		return usageErr(fmt.Errorf("-rate must be ≥ 0, got %v", *rate))
	}
	if *jobTimeout < 0 || *drainTimeout <= 0 {
		return usageErr(errors.New("-job-timeout must be ≥ 0 and -drain-timeout > 0"))
	}
	if *serve == "" {
		if *token != "" {
			return usageErr(errors.New("-token only applies with -serve"))
		}
		if *chaos != "" {
			return usageErr(errors.New("-chaos only applies with -serve"))
		}
		if *tlsCert != "" || *tlsKey != "" {
			return usageErr(errors.New("-tls-cert/-tls-key only apply with -serve"))
		}
	}
	if (*tlsCert == "") != (*tlsKey == "") {
		return usageErr(errors.New("-tls-cert and -tls-key must be given together"))
	}
	chaosCfg, err := netchaos.ParseFlag(*chaos)
	if err != nil {
		return usageErr(fmt.Errorf("-chaos: %w", err))
	}
	if *lease <= 0 || *maxAttempts <= 0 {
		return usageErr(errors.New("-lease and -max-attempts must be positive"))
	}

	opt := jobserv.Options{
		Dir:          *state,
		Slots:        *slots,
		MaxQueue:     *maxQueue,
		SweepWorkers: *sweepWorkers,
		JobTimeout:   *jobTimeout,
		Quota: jobserv.Quota{
			MaxQueued:  *maxQueued,
			MaxRunning: *maxRunning,
			Rate:       *rate,
			Burst:      *burst,
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(errw, format+"\n", args...)
		},
	}

	// With -serve, sweep jobs dispatch to hmcsweepd workers through an
	// embedded dsweep coordinator instead of simulating in-process.
	if *serve != "" {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			return usageErr(fmt.Errorf("-serve: %w", err))
		}
		if chaosCfg.Enabled() {
			inj, err := netchaos.New(chaosCfg)
			if err != nil {
				ln.Close()
				return usageErr(fmt.Errorf("-chaos: %w", err))
			}
			ln = inj.Listen(ln)
			fmt.Fprintf(errw, "hmcservd: chaos injection armed on worker connections (seed %d)\n", chaosCfg.Seed)
		}
		if *tlsCert != "" {
			cfg, err := dsweep.ServerTLS(*tlsCert, *tlsKey)
			if err != nil {
				ln.Close()
				return usageErr(fmt.Errorf("-tls-cert: %w", err))
			}
			ln = tls.NewListener(ln, cfg)
			fmt.Fprintln(errw, "hmcservd: TLS enabled on worker connections")
		}
		coord := dsweep.NewCoordinator(dsweep.Options{
			Lease:       *lease,
			MaxAttempts: *maxAttempts,
			Token:       *token,
			Logf:        opt.Logf,
		})
		go coord.Serve(ln)
		defer coord.Close()
		opt.Dispatch = coord
		fmt.Fprintf(errw, "hmcservd: coordinating sweeps on %s\n", ln.Addr())
	}

	d, err := jobserv.NewDaemon(opt)
	if err != nil {
		return runErr(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		d.Close()
		return usageErr(fmt.Errorf("-listen: %w", err))
	}
	// The bound address goes to stdout so wrappers (and the e2e tests) can
	// parse it even with -listen :0.
	fmt.Fprintf(outw, "hmcservd: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: jobserv.NewServer(d)}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	defer signal.Stop(usr1)

	for {
		select {
		case <-usr1:
			fmt.Fprintf(errw, "hmcservd: %+v\n", d.Status())
		case err := <-served:
			d.Close()
			return runErr(fmt.Errorf("http server: %w", err))
		case <-sigCtx.Done():
			// Graceful drain: stop admission at the HTTP layer, then park
			// or finish every running job and leave the ledger adoptable.
			fmt.Fprintln(errw, "hmcservd: draining…")
			shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			defer cancel()
			srv.Shutdown(shutCtx)
			if err := d.Drain(shutCtx); err != nil {
				return runErr(err)
			}
			fmt.Fprintln(errw, "hmcservd: drained; state is ready for adoption")
			return 0
		}
	}
}
