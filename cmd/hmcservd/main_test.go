package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"hmccoal"
	"hmccoal/internal/jobserv"
)

// TestMain doubles as the daemon entrypoint for the e2e tests: when the
// re-exec env var is set, the test binary IS hmcservd, so the SIGKILL test
// kills a real process mid-campaign — no in-process simulation of a crash.
func TestMain(m *testing.M) {
	if args := os.Getenv("HMCSERVD_CHILD_ARGS"); args != "" {
		os.Exit(run(strings.Split(args, "\x1f"), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no state", []string{}},
		{"bad slots", []string{"-state", t.TempDir(), "-slots", "0"}},
		{"negative rate", []string{"-state", t.TempDir(), "-rate", "-1"}},
		{"negative quota", []string{"-state", t.TempDir(), "-max-queued", "-1"}},
		{"zero drain", []string{"-state", t.TempDir(), "-drain-timeout", "0s"}},
		{"token sans serve", []string{"-state", t.TempDir(), "-token", "x"}},
		{"chaos sans serve", []string{"-state", t.TempDir(), "-chaos", "seed=1"}},
		{"tls sans serve", []string{"-state", t.TempDir(), "-tls-cert", "c", "-tls-key", "k"}},
		{"cert sans key", []string{"-state", t.TempDir(), "-serve", ":0", "-tls-cert", "c"}},
		{"bad chaos", []string{"-state", t.TempDir(), "-serve", ":0", "-chaos", "nope"}},
		{"zero lease", []string{"-state", t.TempDir(), "-serve", ":0", "-lease", "0s"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var errb bytes.Buffer
			if code := run(c.args, &errb, &errb); code != exitUsage {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", c.args, code, exitUsage, errb.String())
			}
		})
	}
}

// child is one re-exec'd hmcservd process.
type child struct {
	cmd  *exec.Cmd
	addr string
}

// startChild re-execs the test binary as a real hmcservd daemon and parses
// the bound API address from its stdout.
func startChild(t *testing.T, args ...string) *child {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "HMCSERVD_CHILD_ARGS="+strings.Join(args, "\x1f"))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child daemon: %v", err)
	}
	sc := bufio.NewScanner(out)
	addr := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "hmcservd: listening on "); ok {
				addr <- rest
				break
			}
		}
	}()
	select {
	case a := <-addr:
		c := &child{cmd: cmd, addr: a}
		t.Cleanup(func() {
			c.cmd.Process.Kill()
			c.cmd.Wait()
		})
		return c
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("child daemon never reported its listen address")
		return nil
	}
}

func (c *child) url(path string) string { return "http://" + c.addr + path }

func (c *child) submit(t *testing.T, tenant string, pri int, spec jobserv.Spec) string {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"tenant": tenant, "priority": pri, "spec": spec})
	resp, err := http.Post(c.url("/api/v1/jobs"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, buf.String())
	}
	var out map[string]string
	json.NewDecoder(resp.Body).Decode(&out)
	if out["id"] == "" {
		t.Fatal("submit returned no id")
	}
	return out["id"]
}

func (c *child) status(t *testing.T) jobserv.DaemonStatus {
	t.Helper()
	resp, err := http.Get(c.url("/api/v1/status"))
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st jobserv.DaemonStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	return st
}

// waitDone long-polls a job to done and returns its result bytes.
func (c *child) waitDone(t *testing.T, id string, timeout time.Duration) []byte {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(c.url("/api/v1/jobs/" + id + "/wait?timeout=5s"))
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		var v jobserv.JobView
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if v.State == jobserv.StateDone {
			break
		}
		if v.State.Terminal() {
			t.Fatalf("job %s ended %s: %s", id, v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.State, timeout)
		}
	}
	resp, err := http.Get(c.url("/api/v1/jobs/" + id + "/result"))
	if err != nil {
		t.Fatalf("result %s: %v", id, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes()
}

// campaign is the mixed-kind job set the kill test runs.
func campaign() []jobserv.Spec {
	return []jobserv.Spec{
		{Kind: jobserv.KindSingle, Bench: hmccoal.Benchmarks()[0], CPUs: 2, Ops: 60},            // finishes fast
		{Kind: jobserv.KindSingle, Bench: hmccoal.Benchmarks()[1], CPUs: 4, Ops: 4000, Seed: 7}, // long; likely mid-flight at the kill
		{Kind: jobserv.KindSweep, Sweep: "timeout", Bench: hmccoal.Benchmarks()[0], CPUs: 2, Ops: 150, Timeouts: []uint64{16, 22, 28}},
		{Kind: jobserv.KindSoak, Seed: 5, Runs: 4},
		{Kind: jobserv.KindSingle, Bench: hmccoal.Benchmarks()[2], CPUs: 2, Ops: 80},
	}
}

// TestKillTheDaemon is the acceptance test of the survivability story: a
// real hmcservd process is SIGKILL'd mid-campaign, a fresh process adopts
// the state directory, finishes every job, and the results are
// byte-identical to a never-killed run. The ledger holds exactly one
// submit and one terminal record per job — nothing lost, nothing run
// twice.
func TestKillTheDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec e2e")
	}
	dir := t.TempDir()
	specs := campaign()

	a := startChild(t, "-listen", "127.0.0.1:0", "-state", dir, "-slots", "2", "-sweep-workers", "2")
	var ids []string
	for _, spec := range specs {
		ids = append(ids, a.submit(t, "e2e", 0, spec))
	}

	// Kill once the campaign is demonstrably mid-flight: at least one job
	// done, at least one running.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := a.status(t)
		if st.Done >= 1 && st.Running >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never reached mid-flight: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := a.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no cleanup
		t.Fatalf("kill: %v", err)
	}
	a.cmd.Wait()

	// A fresh daemon adopts the state directory and finishes the campaign.
	b := startChild(t, "-listen", "127.0.0.1:0", "-state", dir, "-slots", "2", "-sweep-workers", "2")
	results := make([][]byte, len(ids))
	for i, id := range ids {
		results[i] = b.waitDone(t, id, 180*time.Second)
	}

	// Reference: the same campaign on a never-killed daemon.
	refDir := t.TempDir()
	c := startChild(t, "-listen", "127.0.0.1:0", "-state", refDir, "-slots", "2", "-sweep-workers", "2")
	for i, spec := range specs {
		id := c.submit(t, "e2e", 0, spec)
		want := c.waitDone(t, id, 180*time.Second)
		if !bytes.Equal(results[i], want) {
			t.Errorf("job %d (%s): SIGKILL+restart changed the result\nkilled:    %.200s\nreference: %.200s",
				i, specs[i].Kind, results[i], want)
		}
	}

	// Exactly-once ledger accounting across both processes' appends.
	counts := ledgerCounts(t, dir+"/ledger.jsonl")
	if len(counts) != len(ids) {
		t.Fatalf("ledger names %d jobs, want %d", len(counts), len(ids))
	}
	for _, id := range ids {
		c := counts[id]
		if c["submit"] != 1 {
			t.Errorf("job %s: %d submit records, want 1", id, c["submit"])
		}
		if terminal := c["done"] + c["fail"] + c["cancel"]; terminal != 1 {
			t.Errorf("job %s: %d terminal records, want exactly 1 (%v)", id, terminal, c)
		}
	}

	// SIGTERM drains the adopting daemon cleanly: exit code 0.
	if err := b.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sigterm: %v", err)
	}
	if err := b.cmd.Wait(); err != nil {
		t.Fatalf("drained daemon exited dirty: %v", err)
	}
}

// ledgerCounts tallies ledger events per (id, type) without importing
// jobserv internals — the file format is the public contract.
func ledgerCounts(t *testing.T, path string) map[string]map[string]int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open ledger: %v", err)
	}
	defer f.Close()
	counts := make(map[string]map[string]int)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev struct {
			Type string `json:"type"`
			ID   string `json:"id"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) != nil || ev.Type == "" || ev.ID == "" {
			continue // torn line from the kill — legal
		}
		if counts[ev.ID] == nil {
			counts[ev.ID] = make(map[string]int)
		}
		counts[ev.ID][ev.Type]++
	}
	return counts
}
