// Command hmcsim drives the HMC device model directly with synthetic
// traffic, reproducing the §2.2 packet-economics arguments on the simulated
// device: request-size sweeps, bank-conflict behaviour of scattered versus
// coalesced access, and Equation-1 bandwidth efficiency.
//
// Usage:
//
//	hmcsim -sweep                       # request-size sweep
//	hmcsim -pattern seq -size 64        # one traffic pattern
//	hmcsim -pattern scatter16           # the 16×16 B motivating example
//	hmcsim -pattern scatter16 -frontend two-phase # same, coalesced first
//
// With -frontend the pattern's requests are routed through a coalescing
// front-end (the paper's two-phase coalescer or the GPU-style warp unit,
// with -sched picking the issue policy) before they reach the device —
// the scatter16 example then shows the coalescer repairing exactly the
// packet economics the raw run demonstrates.
//
// Exit codes: 0 success, 1 usage/configuration error, 2 device run
// failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hmccoal/internal/coalescer"
	"hmccoal/internal/fault"
	"hmccoal/internal/frontend"
	"hmccoal/internal/hmc"
	"hmccoal/internal/membackend"
	"hmccoal/internal/mshr"
	"hmccoal/internal/profiling"
	"hmccoal/internal/sweep"
)

// Exit codes: flag/config mistakes are the user's to fix (1); a failed
// device run is the simulator's fault (2).
const (
	exitUsage = 1
	exitRun   = 2
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("hmcsim", flag.ContinueOnError)
	var (
		sizeSweep = fs.Bool("sweep", false, "run the request-size sweep and exit")
		pattern   = fs.String("pattern", "seq", "traffic pattern: seq, random, scatter16")
		size      = fs.Uint("size", 64, "request payload bytes (FLIT multiple)")
		requests  = fs.Int("n", 100000, "number of requests")
		seed      = fs.Int64("seed", 1, "random seed")
		workers   = fs.Int("workers", 0, "sweep worker pool size (0 = all cores, 1 = serial)")
		batch     = fs.Int("batch", 0, "sweep points grouped per worker job (0/1 = one at a time)")
		backend   = fs.String("backend", "hmc", "memory backend: hmc, ddr or ideal")
		frontendF = fs.String("frontend", "", "route the pattern through a coalescing front-end before the device: two-phase or warp ('' = raw device traffic)")
		schedF    = fs.String("sched", "", "with -frontend: issue policy inside the front-end, frfcfs or hetero")
		faults    = fs.String("faults", "", "link fault injection (hmc backend only), e.g. seed=1,ber=1e-6[,drop=1e-7][,retries=3]")

		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write an allocation profile to this file on exit")
		exectrace  = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return exitUsage
	}
	if *workers < 0 {
		return usageErr(fmt.Errorf("-workers must be ≥ 0, got %d", *workers))
	}
	if *batch < 0 {
		return usageErr(fmt.Errorf("-batch must be ≥ 0, got %d", *batch))
	}

	faultCfg, err := fault.ParseFlag(*faults)
	if err != nil {
		return usageErr(fmt.Errorf("-faults: %w", err))
	}
	kind, err := membackend.ParseKind(*backend)
	if err != nil {
		return usageErr(err)
	}
	if *frontendF == "" && *schedF != "" {
		return usageErr(errors.New("-sched only applies with -frontend"))
	}
	if *frontendF != "" && *sizeSweep {
		return usageErr(errors.New("-frontend only applies to pattern runs, not -sweep"))
	}
	feKind, err := frontend.ParseKind(*frontendF)
	if err != nil {
		return usageErr(err)
	}
	schedKind, err := frontend.ParseSched(*schedF)
	if err != nil {
		return usageErr(err)
	}
	if *size < hmc.MinRequestBytes || *size > hmc.MaxRequestBytes || *size%hmc.FlitBytes != 0 {
		return usageErr(fmt.Errorf("-size %d: want a FLIT-aligned payload in [%d,%d]",
			*size, hmc.MinRequestBytes, hmc.MaxRequestBytes))
	}

	stopProf, perr := profiling.Start(*cpuprofile, *memprofile, *exectrace)
	if perr != nil {
		return usageErr(perr)
	}
	defer stopProf()

	if *sizeSweep {
		// Each sweep point drives its own device, so the grid fans out
		// across the worker pool; rows print in size order regardless of
		// completion order.
		sizes := []uint32{16, 32, 64, 128, 256}
		point := func(sz uint32) (string, error) {
			dev, err := membackend.New(kind, hmc.DefaultConfig())
			if err != nil {
				return "", err
			}
			var last uint64
			n := (1 << 24) / int(sz) // fixed 16 MiB of payload
			for j := 0; j < n; j++ {
				done, err := dev.Submit(0, hmc.Request{
					Addr:           uint64(j) * 256,
					PacketBytes:    sz,
					RequestedBytes: sz,
				})
				if err != nil {
					return "", err
				}
				if done > last {
					last = done
				}
			}
			s := dev.Stats()
			us := float64(last) / 3.3 / 1000
			gbps := float64(s.PacketBytes) / (us * 1000)
			return fmt.Sprintf("%7dB %8s %12d %12.1f %14.2f %11.2f%%",
				sz, kind, s.Requests, us, gbps, 100*s.BandwidthEfficiency()), nil
		}
		rows, err := sweep.MapBatch(context.Background(), len(sizes), *batch, sweep.Options{Workers: *workers},
			func(_ context.Context, idxs []int) ([]string, error) {
				out := make([]string, 0, len(idxs))
				for _, i := range idxs {
					row, err := point(sizes[i])
					if err != nil {
						return nil, err
					}
					out = append(out, row)
				}
				return out, nil
			})
		if err != nil {
			return runErr(err)
		}
		fmt.Printf("%8s %8s %12s %12s %14s %12s\n", "size", "backend", "requests", "time(µs)", "GB/s(payload)", "efficiency")
		for _, row := range rows {
			fmt.Println(row)
		}
		return 0
	}

	dev, err := newBackend(kind, faultCfg)
	if err != nil {
		return usageErr(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	var last uint64
	step := func(addr uint64, size uint32) error {
		done, err := submit(dev, addr, size)
		if err != nil {
			return err
		}
		last = max(last, done)
		return nil
	}
	var drv *coalescedDriver
	if *frontendF != "" {
		drv, err = newCoalescedDriver(feKind, schedKind, dev)
		if err != nil {
			return usageErr(err)
		}
		step = drv.step
	}
	var runErrV error
	switch *pattern {
	case "seq":
		for i := 0; i < *requests && runErrV == nil; i++ {
			runErrV = step(uint64(i)*256, uint32(*size))
		}
	case "random":
		for i := 0; i < *requests && runErrV == nil; i++ {
			runErrV = step(uint64(rng.Int63n(1<<25))*256, uint32(*size))
		}
	case "scatter16":
		// §2.2.1: 16 separate 16 B loads per 256 B block vs one coalesced
		// load — row reopened 16 times.
		for i := 0; i < *requests/16 && runErrV == nil; i++ {
			base := uint64(i) * 256
			for j := uint64(0); j < 16 && runErrV == nil; j++ {
				runErrV = step(base+j*16, 16)
			}
		}
	default:
		return usageErr(fmt.Errorf("unknown pattern %q", *pattern))
	}
	if runErrV != nil {
		return runErr(runErrV)
	}
	if drv != nil {
		if err := drv.finish(); err != nil {
			return runErr(err)
		}
		last = max(last, drv.last)
		fs := drv.fr.Stats()
		fmt.Printf("front-end %v (%v): %d line requests -> %d memory packets (%.2f%% coalescing efficiency)\n",
			feKind, schedKind, fs.Requests, fs.HMCRequests, 100*fs.CoalescingEfficiency())
	}

	s := dev.Stats()
	fmt.Printf("pattern %s (%s backend): %d requests\n", *pattern, kind, s.Requests)
	fmt.Printf("  completion           %.1f µs\n", float64(last)/3.3/1000)
	fmt.Printf("  transferred          %.2f MB (control %.2f MB)\n",
		float64(s.TransferredBytes)/1e6, float64(s.ControlBytes())/1e6)
	fmt.Printf("  bandwidth efficiency %.2f%%\n", 100*s.BandwidthEfficiency())
	fmt.Printf("  row activations      %d\n", s.RowActivations)
	fmt.Printf("  bank conflicts       %d (wait %.1f µs)\n", s.BankConflicts, float64(s.ConflictWait)/3.3/1000)
	if faultCfg.Enabled() {
		fmt.Printf("  link retries         %d (%d retrains, %.2f MB retransmitted)\n",
			s.Retries, s.RetrainEvents, float64(s.RetransmittedBytes)/1e6)
		fmt.Printf("  poisoned responses   %d (%d dropped)\n", s.PoisonedResponses, s.DroppedResponses)
	}
	return 0
}

// coalescedDriver routes pattern requests through a coalescing front-end
// before the device, mirroring the simulator's LLC-miss issue path: each
// access splits into per-line requests, the front-end batches and merges
// them, and issued packets reach the device through SubmitPacket. The
// request lane is the address's 256 B block modulo the lane count, so a
// block's scattered loads share one lane — the scatter16 pattern is then
// exactly the motivating example the front-end exists to repair.
type coalescedDriver struct {
	fr     frontend.Frontend
	now    uint64
	token  uint64
	last   uint64
	devErr error
}

const (
	driverLineBytes  = 64
	driverBlockBytes = 256
	driverLanes      = 16
)

func newCoalescedDriver(fe frontend.Kind, sched frontend.SchedKind, dev membackend.Backend) (*coalescedDriver, error) {
	d := &coalescedDriver{}
	fr, err := frontend.New(frontend.Config{
		Kind: fe, Sched: sched, Lanes: driverLanes,
		Coalescer: coalescer.DefaultConfig(),
	},
		func(tick uint64, e *mshr.Entry) coalescer.IssueResult {
			packet := uint32(e.Lines()) * driverLineBytes
			requested := uint32(e.Payload())
			if requested > packet {
				requested = packet
			}
			comp, err := dev.SubmitPacket(tick, hmc.Request{
				Addr:           e.BaseLine() * driverLineBytes,
				PacketBytes:    packet,
				RequestedBytes: requested,
				Write:          e.Write(),
			})
			if err != nil {
				if d.devErr == nil {
					d.devErr = err
				}
				return coalescer.IssueResult{Done: tick}
			}
			return coalescer.IssueResult{
				Done:    comp.Done,
				Fault:   comp.Poisoned,
				Dropped: comp.Dropped,
				Retries: comp.Retries,
			}
		},
		func(tick uint64, subs []mshr.Sub, fault bool) {
			if tick != coalescer.NeverTick && tick > d.last {
				d.last = tick
			}
		})
	if err != nil {
		return nil, err
	}
	d.fr = fr
	return d, nil
}

// step presents one pattern access to the front-end, split into line
// requests as the LLC miss path would deliver them.
func (d *coalescedDriver) step(addr uint64, size uint32) error {
	for off := uint64(0); off < uint64(size); {
		line := (addr + off) / driverLineBytes
		chunk := (line+1)*driverLineBytes - (addr + off)
		if rest := uint64(size) - off; chunk > rest {
			chunk = rest
		}
		d.fr.Push(d.now, coalescer.Request{
			Line:    line,
			Payload: uint32(chunk),
			Token:   d.token,
			CPU:     uint8((addr + off) / driverBlockBytes % driverLanes),
		})
		d.token++
		off += chunk
	}
	d.now += 2
	d.fr.Advance(d.now)
	return d.devErr
}

// finish drains the front-end and audits its conservation laws.
func (d *coalescedDriver) finish() error {
	end, err := d.fr.Drain(d.now)
	if err != nil {
		return err
	}
	if d.devErr != nil {
		return d.devErr
	}
	if end > d.last {
		d.last = end
	}
	return d.fr.CheckDrained(end)
}

// newBackend builds the selected memory backend; fault injection is
// rejected by the factory for the link-less ddr/ideal models.
func newBackend(kind membackend.Kind, f fault.Config) (membackend.Backend, error) {
	cfg := hmc.DefaultConfig()
	cfg.Fault = f
	return membackend.New(kind, cfg)
}

// submit issues one request and returns its completion tick. A dropped
// response (fault injection) completes never; callers track the last
// real tick, so NeverTick is simply ignored by the max.
func submit(dev membackend.Backend, addr uint64, size uint32) (uint64, error) {
	comp, err := dev.SubmitPacket(0, hmc.Request{Addr: addr, PacketBytes: size, RequestedBytes: size})
	if err != nil {
		return 0, err
	}
	if comp.Dropped {
		return 0, nil
	}
	return comp.Done, nil
}

// usageErr reports a configuration mistake (exit 1); runErr reports a
// failed device run (exit 2).
func usageErr(err error) int {
	fmt.Fprintln(os.Stderr, "hmcsim:", err)
	return exitUsage
}

func runErr(err error) int {
	fmt.Fprintln(os.Stderr, "hmcsim:", err)
	return exitRun
}
