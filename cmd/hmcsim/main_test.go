package main

import "testing"

// TestFlagValidation pins the usage exit code for malformed worker-pool
// flags: negatives are rejected before any device run starts.
func TestFlagValidation(t *testing.T) {
	for name, argv := range map[string][]string{
		"negative workers": {"-workers", "-1", "-sweep"},
		"negative batch":   {"-batch", "-2", "-sweep"},
		"bad size":         {"-size", "17"},
		"bad backend":      {"-backend", "sram"},
		"bad pattern":      {"-pattern", "zigzag", "-n", "1"},
	} {
		if code := run(argv); code != exitUsage {
			t.Errorf("%s (%v): exit %d, want %d", name, argv, code, exitUsage)
		}
	}
}
