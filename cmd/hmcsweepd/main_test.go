package main

import "testing"

// TestFlagValidation pins the usage exit code for malformed worker flags:
// a worker with no coordinator or nonsensical concurrency must refuse to
// start rather than spin.
func TestFlagValidation(t *testing.T) {
	for name, argv := range map[string][]string{
		"missing connect":     {},
		"negative slots":      {"-connect", "x:1", "-slots", "-1"},
		"zero dial retry":     {"-connect", "x:1", "-dial-retry", "0s"},
		"negative dial retry": {"-connect", "x:1", "-dial-retry", "-5s"},
		"bad reconnects":      {"-connect", "x:1", "-reconnects", "-2"},
		"bad chaos":           {"-connect", "x:1", "-chaos", "bogus=1"},
		"missing tls ca":      {"-connect", "x:1", "-tls-ca", "/no/such/ca.pem"},
	} {
		if code := run(argv); code != exitUsage {
			t.Errorf("%s (%v): exit %d, want %d", name, argv, code, exitUsage)
		}
	}
}
