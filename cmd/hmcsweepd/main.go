// Command hmcsweepd is a distributed-sweep worker: it connects to an
// hmccoal coordinator (hmccoal -serve), pulls sweep job groups over the
// dsweep wire protocol, runs the simulations locally and streams the
// results back. Start any number of workers on any machines that can
// reach the coordinator; work-stealing dispatch balances the grid across
// them, and the coordinator's printed figures stay byte-identical to a
// local run.
//
// Usage:
//
//	hmcsweepd -connect host:7333               # one worker, all cores
//	hmcsweepd -connect host:7333 -slots 2      # two concurrent job groups
//	hmcsweepd -connect host:7333 -name rack7   # named in coordinator logs
//	hmcsweepd -connect host:7333 -token secret # authenticated handshake
//
// The worker exits 0 when the coordinator drains it (sweep finished) and
// on a graceful SIGINT/SIGTERM drain: a job group already running is
// finished and its result delivered before the process leaves, so
// stopping a worker never loses completed simulations — the coordinator
// requeues only groups lost to a real crash.
//
// A connection lost to a transport fault is re-dialed with jittered
// backoff and the slot resumes pulling, bounded by -reconnects
// consecutive failures (the counter resets on every successful
// handshake). A rejected token or protocol mismatch is terminal: the
// worker exits 2 instead of re-presenting credentials the coordinator
// already refused.
//
// Exit codes: 0 clean drain, 1 usage/configuration error, 2 worker
// failure (coordinator unreachable, protocol mismatch, transport loss).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"hmccoal"
	"hmccoal/internal/dsweep"
	"hmccoal/internal/netchaos"
)

const (
	exitUsage = 1
	exitRun   = 2
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("hmcsweepd", flag.ContinueOnError)
	var (
		connect    = fs.String("connect", "", "coordinator address (host:port) to pull sweep job groups from (required)")
		name       = fs.String("name", "", "worker name in coordinator logs (default host/pid)")
		slots      = fs.Int("slots", 0, "job groups run concurrently (0 = one per core)")
		dialRetry  = fs.Duration("dial-retry", dsweep.DefaultDialRetry, "how long to keep retrying the initial coordinator dial (workers may start first)")
		token      = fs.String("token", "", "shared secret presented in the handshake (must match the coordinator's -token)")
		reconnects = fs.Int("reconnects", dsweep.DefaultReconnects, "consecutive failed reconnection attempts before a slot gives up (-1 disables reconnection)")
		chaos      = fs.String("chaos", "", "deterministic network-fault injection on the coordinator connection, e.g. seed=1,reset=0.02,dialfail=0.1 (testing)")
		tlsCA      = fs.String("tls-ca", "", "PEM CA bundle that must have signed the coordinator's certificate; enables TLS on the connection")
		tlsSkip    = fs.Bool("tls-skip-verify", false, "enable TLS but skip certificate verification (testing)")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return exitUsage
	}
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "hmcsweepd: -connect is required")
		return exitUsage
	}
	if *slots < 0 {
		fmt.Fprintf(os.Stderr, "hmcsweepd: -slots must be ≥ 0, got %d\n", *slots)
		return exitUsage
	}
	if *dialRetry <= 0 {
		fmt.Fprintf(os.Stderr, "hmcsweepd: -dial-retry must be positive, got %v\n", *dialRetry)
		return exitUsage
	}
	if *reconnects < -1 {
		fmt.Fprintf(os.Stderr, "hmcsweepd: -reconnects must be ≥ -1, got %d\n", *reconnects)
		return exitUsage
	}
	chaosCfg, err := netchaos.ParseFlag(*chaos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmcsweepd: -chaos:", err)
		return exitUsage
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s/%d", host, os.Getpid())
	}
	if *slots == 0 {
		*slots = runtime.GOMAXPROCS(0)
	}

	// SIGINT/SIGTERM drain gracefully: a running job group finishes and
	// reports before the worker disconnects.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := dsweep.WorkOptions{
		Name:      *name,
		Slots:     *slots,
		DialRetry: *dialRetry,
		Token:     *token,
		// At the CLI, 0 and -1 both mean "never reconnect"; the library
		// reserves 0 for its default.
		Reconnects: *reconnects,
	}
	if *reconnects <= 0 {
		opt.Reconnects = -1
	}
	if chaosCfg.Enabled() {
		inj, err := netchaos.New(chaosCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hmcsweepd: -chaos:", err)
			return exitUsage
		}
		var d net.Dialer
		opt.Dial = inj.Dialer(func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		})
		fmt.Fprintf(os.Stderr, "hmcsweepd: chaos injection armed on the coordinator connection (seed %d)\n", chaosCfg.Seed)
	}
	if *tlsCA != "" || *tlsSkip {
		tcfg, err := dsweep.ClientTLS(*tlsCA, *tlsSkip)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hmcsweepd: -tls-ca:", err)
			return exitUsage
		}
		// TLS wraps whatever dialer is configured — chaos faults land
		// beneath the record layer, as real network faults would.
		base := opt.Dial
		if base == nil {
			var d net.Dialer
			base = func(ctx context.Context, addr string) (net.Conn, error) {
				return d.DialContext(ctx, "tcp", addr)
			}
		}
		opt.Dial = dsweep.TLSDialer(base, tcfg)
		fmt.Fprintln(os.Stderr, "hmcsweepd: TLS enabled on the coordinator connection")
	}

	runner := hmccoal.NewSweepRunner()
	opt.CacheStats = func() dsweep.CacheCounts {
		s := runner.CacheStats()
		return dsweep.CacheCounts{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions}
	}

	fmt.Fprintf(os.Stderr, "hmcsweepd: %s pulling from %s (%d slots)\n", *name, *connect, *slots)
	if err := dsweep.Work(ctx, *connect, runner.Run, opt); err != nil {
		fmt.Fprintln(os.Stderr, "hmcsweepd:", err)
		return exitRun
	}
	return 0
}
