package main

import "testing"

// TestFlagValidation pins the usage exit code for malformed parallelism
// and distribution flags: negatives must be rejected up front, not fed to
// the sweep engine.
func TestFlagValidation(t *testing.T) {
	for name, argv := range map[string][]string{
		"negative workers": {"-workers", "-1", "-list"},
		"negative batch":   {"-batch", "-4", "-list"},
		"zero lease":       {"-lease", "0s", "-list"},
		"negative lease":   {"-lease", "-1m", "-list"},
		"bad serve addr":   {"-serve", "no-such-host-xyz:0:0", "-list"},
		"unknown figure":   {"-fig", "99"},
		"unknown backend":  {"-backend", "sram", "-list"},
		"token sans serve": {"-token", "s3cret", "-list"},
		"chaos sans serve": {"-chaos", "seed=1,reset=0.5", "-list"},
		"bad chaos":        {"-serve", "127.0.0.1:0", "-chaos", "reset=2", "-list"},
		"zero attempts":    {"-max-attempts", "0", "-list"},
		"tls sans serve":   {"-tls-cert", "x.crt", "-tls-key", "x.key", "-list"},
		"cert sans key":    {"-serve", "127.0.0.1:0", "-tls-cert", "x.crt", "-list"},
		"key sans cert":    {"-serve", "127.0.0.1:0", "-tls-key", "x.key", "-list"},
		"missing keypair":  {"-serve", "127.0.0.1:0", "-tls-cert", "/no/such.crt", "-tls-key", "/no/such.key", "-list"},
	} {
		if code := run(argv); code != exitUsage {
			t.Errorf("%s (%v): exit %d, want %d", name, argv, code, exitUsage)
		}
	}
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("-list: exit %d, want 0", code)
	}
}
