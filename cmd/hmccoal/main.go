// Command hmccoal regenerates the evaluation figures of "Memory Coalescing
// for Hybrid Memory Cube" (ICPP 2018) on the simulated system.
//
// Usage:
//
//	hmccoal -fig all                 # every figure, all cores
//	hmccoal -fig all -workers 1      # same output, strictly serial
//	hmccoal -fig 8 -ops 8000         # one figure at a larger scale
//	hmccoal -fig 10 -bench HPCG      # Figure 10 for a chosen benchmark
//	hmccoal -fig fault -bench STREAM # fault sweep: efficiency vs link BER
//	hmccoal -fig all -checks         # same figures, invariant checker on
//	hmccoal -fig speedup -backend ddr # runtime improvement on another backend
//	hmccoal -run FT -backend ideal   # one benchmark, one summary
//	hmccoal -run FT -snapshot-at 1000000 # snapshot/restore mid-run, same summary
//	hmccoal -list                    # list the benchmarks
//	hmccoal -fig all -serve :7333    # distribute the sweeps to hmcsweepd workers
//	hmccoal -fig all -serve :7333 -token secret # only authenticated workers
//
// With -serve the process coordinates instead of simulating: it listens
// for hmcsweepd worker connections and ships sweep job groups to them
// (see internal/dsweep). The printed figures are byte-identical to a
// local run — only where the simulations execute changes. SIGUSR1 prints
// a status snapshot (queue depth, leases, per-worker throughput, auth
// rejects, reconnects) to stderr.
//
// Exit codes: 0 success, 1 usage/configuration error, 2 simulation or
// invariant-check failure.
package main

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hmccoal"
	"hmccoal/internal/dsweep"
	"hmccoal/internal/netchaos"
	"hmccoal/internal/profiling"
	"hmccoal/internal/trace"
)

// validFigs is the set of figure tokens the -fig flag accepts.
var validFigs = map[string]bool{
	"all": true, "1": true, "2": true, "8": true, "9": true, "10": true,
	"11": true, "12": true, "13": true, "14": true, "15": true, "fault": true,
	"speedup": true, "stride": true,
}

// Exit codes: flag/config mistakes are the user's to fix (1); a failed or
// invariant-violating simulation is the simulator's fault (2).
const (
	exitUsage = 1
	exitRun   = 2
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("hmccoal", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "all", "figure to regenerate: 1,2,8,9,10,11,12,13,14,15, 'fault' or 'all'")
		ops     = fs.Int("ops", 4000, "approximate memory operations per CPU (scale)")
		seed    = fs.Int64("seed", 3, "workload random seed")
		cpus    = fs.Int("cpus", 12, "number of simulated CPUs")
		bench   = fs.String("bench", "HPCG", "benchmark for figure 10")
		list    = fs.Bool("list", false, "list benchmarks and exit")
		chart   = fs.Bool("chart", false, "append ASCII bar charts to figures 8 and 15")
		workers = fs.Int("workers", 0, "simulation worker pool size (0 = all cores, 1 = serial)")
		batch   = fs.Int("batch", 0, "simulations advanced in lockstep per worker (0/1 = one at a time)")
		replay  = fs.String("trace", "", "replay a binary trace file (from tracegen/rvsim) instead of running the benchmark suite")
		asJSON  = fs.Bool("json", false, "with -trace: emit the full results as JSON")

		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = fs.String("memprofile", "", "write an allocation profile to this file on exit")
		exectrace   = fs.String("exectrace", "", "write a runtime execution trace to this file (-trace is taken by replay)")
		checks      = fs.Bool("checks", false, "enable the runtime invariant checker in every simulation (results identical; violations become errors)")
		checkpoint  = fs.String("checkpoint", "", "JSONL checkpoint base path: each sweep persists completed jobs to <base>.<sweep> and resumes from it")
		backend     = fs.String("backend", "hmc", "memory backend behind the coalescer: hmc, ddr or ideal")
		frontendF   = fs.String("frontend", "two-phase", "coalescing front-end between the LLC and the backend: two-phase or warp")
		sched       = fs.String("sched", "frfcfs", "issue policy inside the front-end: frfcfs or hetero")
		runBench    = fs.String("run", "", "run one benchmark once (two-phase) and print its summary; combines with -backend, -faults and -snapshot-at")
		snapshotAt  = fs.Uint64("snapshot-at", 0, "with -run: snapshot at this tick, restore into a fresh system, and finish from the snapshot — the summary is byte-identical to the uninterrupted run")
		faults      = fs.String("faults", "", "with -run: link fault injection (hmc backend only), e.g. seed=1,ber=1e-6[,drop=1e-7][,retries=3]")
		serve       = fs.String("serve", "", "coordinate distributed sweeps: listen on this TCP address and ship sweep job groups to hmcsweepd workers instead of simulating locally")
		lease       = fs.Duration("lease", dsweep.DefaultLease, "with -serve: a worker silent this long after taking a job group is presumed dead and the group is requeued")
		token       = fs.String("token", "", "with -serve: shared secret workers must present in their handshake (empty accepts any worker)")
		maxAttempts = fs.Int("max-attempts", dsweep.DefaultMaxAttempts, "with -serve: workers that may be lost on one job group before the group fails")
		chaos       = fs.String("chaos", "", "with -serve: deterministic network-fault injection on worker connections, e.g. seed=1,reset=0.02,delay=2ms (testing)")
		tlsCert     = fs.String("tls-cert", "", "with -serve: PEM certificate; worker connections are TLS-wrapped (requires -tls-key)")
		tlsKey      = fs.String("tls-key", "", "with -serve: PEM private key for -tls-cert")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return exitUsage
	}
	if *workers < 0 {
		return usageErr(fmt.Errorf("-workers must be ≥ 0, got %d", *workers))
	}
	if *batch < 0 {
		return usageErr(fmt.Errorf("-batch must be ≥ 0, got %d", *batch))
	}
	if *lease <= 0 {
		return usageErr(fmt.Errorf("-lease must be positive, got %v", *lease))
	}
	if *maxAttempts <= 0 {
		return usageErr(fmt.Errorf("-max-attempts must be positive, got %d", *maxAttempts))
	}
	if *serve == "" {
		if *token != "" {
			return usageErr(errors.New("-token only applies with -serve"))
		}
		if *chaos != "" {
			return usageErr(errors.New("-chaos only applies with -serve"))
		}
		if *tlsCert != "" || *tlsKey != "" {
			return usageErr(errors.New("-tls-cert/-tls-key only apply with -serve"))
		}
	}
	if (*tlsCert == "") != (*tlsKey == "") {
		return usageErr(errors.New("-tls-cert and -tls-key must be given together"))
	}
	chaosCfg, err := netchaos.ParseFlag(*chaos)
	if err != nil {
		return usageErr(fmt.Errorf("-chaos: %w", err))
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		return usageErr(err)
	}
	defer stopProf()

	// SIGTERM drains like Ctrl-C: sweeps stop at the next group boundary
	// with every completed job checkpointed, and a serving coordinator
	// stops handing out groups.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	kind, err := hmccoal.ParseBackend(*backend)
	if err != nil {
		return usageErr(err)
	}
	feKind, err := hmccoal.ParseFrontend(*frontendF)
	if err != nil {
		return usageErr(err)
	}
	schedKind, err := hmccoal.ParseSched(*sched)
	if err != nil {
		return usageErr(err)
	}

	var dispatch hmccoal.Dispatcher
	if *serve != "" {
		coord, err := serveCoordinator(*serve, dsweep.Options{
			Lease:       *lease,
			MaxAttempts: *maxAttempts,
			Token:       *token,
		}, chaosCfg, *tlsCert, *tlsKey)
		if err != nil {
			return usageErr(err)
		}
		defer coord.Close()
		dispatch = coord

		// SIGUSR1 prints a status snapshot — queue depth, leases,
		// per-worker throughput, fault counters — to stderr on demand.
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		defer signal.Stop(usr1)
		go func() {
			for range usr1 {
				fmt.Fprintln(os.Stderr, "hmccoal:", coord.Status())
			}
		}()
	}

	if *runBench != "" {
		if err := validBenchmark(*runBench); err != nil {
			return usageErr(err)
		}
		faultCfg, err := hmccoal.ParseFaultFlag(*faults)
		if err != nil {
			return usageErr(fmt.Errorf("-faults: %w", err))
		}
		if kind != hmccoal.BackendHMC && faultCfg.Enabled() {
			return usageErr(fmt.Errorf("fault injection is HMC-only; -backend must be hmc, not %v", kind))
		}
		p := hmccoal.TraceParams{CPUs: *cpus, OpsPerCPU: *ops, Seed: *seed}
		if err := runOnce(*runBench, p, kind, feKind, schedKind, faultCfg, *checks, *snapshotAt); err != nil {
			return runErr(err)
		}
		return 0
	}

	if *replay != "" {
		accs, err := loadTrace(*replay)
		if err != nil {
			return usageErr(err)
		}
		if err := replayTrace(accs, *cpus, *checks, *asJSON); err != nil {
			return runErr(err)
		}
		return 0
	}

	if *list {
		for _, name := range hmccoal.Benchmarks() {
			desc, _ := hmccoal.DescribeBenchmark(name)
			fmt.Printf("%-9s %s\n", name, desc)
		}
		return 0
	}

	p := hmccoal.TraceParams{CPUs: *cpus, OpsPerCPU: *ops, Seed: *seed}
	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		f = strings.TrimSpace(f)
		if !validFigs[f] {
			return usageErr(fmt.Errorf("unknown figure %q (valid: 1, 2, 8, 9, 10, 11, 12, 13, 14, 15, fault, speedup, stride, all)", f))
		}
		want[f] = true
	}
	all := want["all"]
	need := func(f string) bool { return all || want[f] }

	if need("10") || need("fault") {
		if err := validBenchmark(*bench); err != nil {
			return usageErr(err)
		}
	}
	if kind != hmccoal.BackendHMC && need("fault") {
		return usageErr(fmt.Errorf("the fault sweep injects errors on HMC serial links; -backend must be hmc, not %v", kind))
	}

	opts := func(tag string) hmccoal.SweepOptions {
		opt := sweepOptions(*workers, *batch, *checks, *checkpoint, tag, kind)
		opt.Frontend, opt.Sched = feKind, schedKind
		opt.Dispatch = dispatch
		return opt
	}

	if need("1") {
		section("Figure 1 — bandwidth efficiency of HMC request packets")
		fmt.Print(hmccoal.Figure1Table())
	}
	if need("2") {
		section("Figure 2 — control overhead of different requested data size")
		fmt.Print(hmccoal.Figure2Table())
	}

	needsRuns := false
	for _, f := range []string{"8", "9", "10", "11", "12", "13", "15"} {
		if need(f) {
			needsRuns = true
		}
	}
	var runs []hmccoal.BenchmarkRun
	if needsRuns {
		fmt.Fprintf(os.Stderr, "running %d benchmarks × 3 architectures at %d ops/CPU…\n",
			len(hmccoal.Benchmarks()), *ops)
		var err error
		runs, err = hmccoal.RunAllContext(ctx, p, opts("runall"))
		fmt.Fprintln(os.Stderr)
		if err != nil {
			return runErr(err)
		}
	}

	if need("8") {
		section("Figure 8 — coalescing efficiency")
		fmt.Print(hmccoal.Figure8Table(runs))
		if *chart {
			fmt.Printf("\n%s", hmccoal.Figure8Chart(runs))
		}
	}
	if need("9") {
		section("Figure 9 — bandwidth efficiency of coalesced and raw requests")
		fmt.Print(hmccoal.Figure9Table(runs))
	}
	if need("10") {
		section(fmt.Sprintf("Figure 10 — coalesced HMC request distribution of %s", *bench))
		for _, r := range runs {
			if r.Name == *bench {
				fmt.Print(hmccoal.Figure10Table(r))
			}
		}
	}
	if need("11") {
		section("Figure 11 — bandwidth saving")
		fmt.Print(hmccoal.Figure11Table(runs))
	}
	if need("12") {
		section("Figure 12 — average latency of coalescing in the DMC unit")
		fmt.Print(hmccoal.Figure12Table(runs))
	}
	if need("13") {
		section("Figure 13 — average time cost of filling up the CRQ")
		fmt.Print(hmccoal.Figure13Table(runs))
	}
	if need("14") {
		section("Figure 14 — average coalescer latency vs timeout T")
		table, err := hmccoal.Figure14TableContext(ctx, p, nil, opts("fig14"))
		fmt.Fprintln(os.Stderr)
		if err != nil {
			return runErr(err)
		}
		fmt.Print(table)
	}
	if need("15") {
		section("Figure 15 — performance improvement with memory coalescer")
		fmt.Print(hmccoal.Figure15Table(runs))
		if *chart {
			fmt.Printf("\n%s", hmccoal.Figure15Chart(runs))
		}
	}
	// The backend-comparison speedup study is explicit-only: "all" keeps
	// producing exactly the paper's figure set.
	if want["speedup"] {
		section(fmt.Sprintf("Speedup — runtime improvement on the %v backend", kind))
		table, err := hmccoal.SpeedupTableContext(ctx, p, opts("speedup"))
		fmt.Fprintln(os.Stderr)
		if err != nil {
			return runErr(err)
		}
		fmt.Print(table)
	}
	// The stride-ladder front-end comparison is explicit-only for the same
	// reason; it sweeps the front-end × scheduler axes itself, so the
	// -frontend/-sched flags do not apply to it.
	if want["stride"] {
		section("Stride ladder — front-end coalescing efficiency vs access stride")
		runs, err := hmccoal.StrideLadderContext(ctx, p, opts("stride"))
		fmt.Fprintln(os.Stderr)
		if err != nil {
			return runErr(err)
		}
		fmt.Print(hmccoal.StrideLadderTable(runs))
	}
	if need("fault") {
		section(fmt.Sprintf("Fault sweep — efficiency and speedup vs link error rate (%s)", *bench))
		rows, err := hmccoal.FaultSweepContext(ctx, *bench, p, uint64(*seed), nil, opts("fault"))
		fmt.Fprintln(os.Stderr)
		if err != nil {
			return runErr(err)
		}
		fmt.Print(hmccoal.FaultSweepTable(rows))
	}
	return 0
}

// loadTrace reads and orders a captured trace file; a bad path or corrupt
// file is the user's mistake, so it is classified as a usage error.
func loadTrace(path string) ([]trace.Access, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	accs, err := trace.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	return trace.Merge(accs), nil // captured traces may be loosely ordered
}

// replayTrace runs a captured trace under the conventional MHA and the
// memory coalescer and prints both summaries.
func replayTrace(accs []trace.Access, cpus int, checks, asJSON bool) error {
	if !asJSON {
		fmt.Println(trace.Summarize(accs))
	}
	results := map[string]hmccoal.Result{}
	for _, mode := range []hmccoal.Mode{hmccoal.ModeBaseline, hmccoal.ModeTwoPhase} {
		cfg := hmccoal.DefaultConfig()
		cfg.Hierarchy.CPUs = cpus
		cfg.Mode = mode
		cfg.Checks = checks
		sys, err := hmccoal.NewSystem(cfg)
		if err != nil {
			return err
		}
		res, err := sys.Run(accs)
		if err != nil {
			return err
		}
		if asJSON {
			results[mode.String()] = res
			continue
		}
		section(fmt.Sprintf("%v", mode))
		fmt.Print(res.Summary())
		fmt.Printf("\ndevice packet sizes:\n%s", hmccoal.PacketSizeTable(res))
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}

// runOnce runs one benchmark once under the two-phase coalescer on the
// chosen backend and prints its summary. With snapAt > 0 the run is
// snapshotted at that tick, restored into a fresh system, and finished
// from the snapshot — stdout is byte-identical to the uninterrupted run
// (snapshot details go to stderr), which is exactly what the CI
// determinism check diffs.
func runOnce(bench string, p hmccoal.TraceParams, kind hmccoal.BackendKind, fe hmccoal.FrontendKind, sched hmccoal.SchedKind, faultCfg hmccoal.FaultConfig, checks bool, snapAt uint64) error {
	accs, err := hmccoal.GenerateTrace(bench, p)
	if err != nil {
		return err
	}
	cfg := hmccoal.DefaultConfig()
	cfg.Mode = hmccoal.ModeTwoPhase
	cfg.Backend = kind
	cfg.Frontend = fe
	cfg.Sched = sched
	cfg.Checks = checks
	cfg.HMC.Fault = faultCfg
	sys, err := hmccoal.NewSystem(cfg)
	if err != nil {
		return err
	}

	var res hmccoal.Result
	if snapAt == 0 {
		res, err = sys.Run(accs)
		if err != nil {
			return err
		}
	} else {
		res, err = runViaSnapshot(sys, cfg, accs, snapAt)
		if err != nil {
			return err
		}
	}
	// The default front-end keeps the historical title, so determinism
	// checks diffing default-run stdout stay byte-identical.
	title := fmt.Sprintf("%s on the %v backend (two-phase)", bench, kind)
	if fe != hmccoal.FrontendTwoPhase || sched != hmccoal.SchedFRFCFS {
		title = fmt.Sprintf("%s on the %v backend (%v front-end, %v)", bench, kind, fe, sched)
	}
	section(title)
	fmt.Print(res.Summary())
	return nil
}

// runViaSnapshot steps sys to snapAt, snapshots it, and finishes the run
// on a fresh system restored from the snapshot. A run that drains before
// snapAt finishes normally with a note on stderr.
func runViaSnapshot(sys *hmccoal.System, cfg hmccoal.Config, accs []hmccoal.Access, snapAt uint64) (hmccoal.Result, error) {
	if err := sys.Start(accs); err != nil {
		return hmccoal.Result{}, err
	}
	for sys.Tick() < snapAt {
		done, err := sys.Step()
		if err != nil {
			return hmccoal.Result{}, err
		}
		if done {
			fmt.Fprintf(os.Stderr, "hmccoal: run drained before tick %d; finishing without a snapshot\n", snapAt)
			return sys.Finish()
		}
	}
	snap, err := sys.Snapshot()
	if err != nil {
		return hmccoal.Result{}, err
	}
	restored, err := hmccoal.NewSystem(cfg)
	if err != nil {
		return hmccoal.Result{}, err
	}
	if err := restored.Restore(snap); err != nil {
		return hmccoal.Result{}, err
	}
	fmt.Fprintf(os.Stderr, "hmccoal: snapshotted at tick %d, finishing from the restored copy\n", sys.Tick())
	for {
		done, err := restored.Step()
		if err != nil {
			return hmccoal.Result{}, err
		}
		if done {
			return restored.Finish()
		}
	}
}

// sweepOptions wires the worker count, the lockstep batch width, the
// invariant-checker toggle and a stderr progress meter into a parallel
// sweep. Progress goes to stderr only, so stdout stays byte-identical at
// any worker count or batch width. Each sweep grid gets its own checkpoint
// file (<base>.<tag>) so resumes never mix grids.
func sweepOptions(workers, batch int, checks bool, checkpoint, tag string, backend hmccoal.BackendKind) hmccoal.SweepOptions {
	opt := hmccoal.SweepOptions{
		Workers: workers,
		Batch:   batch,
		Checks:  checks,
		Backend: backend,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d simulations", done, total)
		},
	}
	if checkpoint != "" {
		opt.Checkpoint = checkpoint + "." + tag
	}
	return opt
}

// serveCoordinator starts the distributed-sweep coordinator on addr and
// announces the bound address on stderr (":0" binds an ephemeral port, so
// scripts parse the announcement). The coordinator's chatter — worker
// connects, losses, requeues — also goes to stderr, keeping stdout
// byte-identical to a local run. A non-zero chaos config wraps the
// listener so every accepted worker connection suffers deterministic,
// seeded network faults — the CI soak that proves figures stay
// byte-identical anyway. A -tls-cert/-tls-key pair wraps the listener
// last, so encryption sits above the injected faults exactly as it sits
// above real network faults.
func serveCoordinator(addr string, opt dsweep.Options, chaos netchaos.Config, tlsCert, tlsKey string) (*dsweep.Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-serve: %w", err)
	}
	if chaos.Enabled() {
		inj, err := netchaos.New(chaos)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("-chaos: %w", err)
		}
		ln = inj.Listen(ln)
		fmt.Fprintf(os.Stderr, "hmccoal: chaos injection armed on worker connections (seed %d)\n", chaos.Seed)
	}
	if tlsCert != "" {
		cfg, err := dsweep.ServerTLS(tlsCert, tlsKey)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("-tls-cert: %w", err)
		}
		ln = tls.NewListener(ln, cfg)
		fmt.Fprintln(os.Stderr, "hmccoal: TLS enabled on worker connections")
	}
	opt.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hmccoal: "+format+"\n", args...)
	}
	coord := dsweep.NewCoordinator(opt)
	go coord.Serve(ln)
	fmt.Fprintf(os.Stderr, "hmccoal: coordinating sweeps on %s\n", ln.Addr())
	return coord, nil
}

// validBenchmark rejects names that are not in the benchmark suite.
func validBenchmark(name string) error {
	for _, n := range hmccoal.Benchmarks() {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown benchmark %q (have %v)", name, hmccoal.Benchmarks())
}

func section(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// usageErr reports a configuration mistake (exit 1); runErr reports a
// failed simulation — including invariant violations (exit 2).
func usageErr(err error) int {
	fmt.Fprintln(os.Stderr, "hmccoal:", err)
	return exitUsage
}

func runErr(err error) int {
	fmt.Fprintln(os.Stderr, "hmccoal:", err)
	return exitRun
}
