// Command hmccoal regenerates the evaluation figures of "Memory Coalescing
// for Hybrid Memory Cube" (ICPP 2018) on the simulated system.
//
// Usage:
//
//	hmccoal -fig all                 # every figure, all cores
//	hmccoal -fig all -workers 1      # same output, strictly serial
//	hmccoal -fig 8 -ops 8000         # one figure at a larger scale
//	hmccoal -fig 10 -bench HPCG      # Figure 10 for a chosen benchmark
//	hmccoal -fig fault -bench STREAM # fault sweep: efficiency vs link BER
//	hmccoal -list                    # list the benchmarks
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"hmccoal"
	"hmccoal/internal/profiling"
	"hmccoal/internal/trace"
)

// validFigs is the set of figure tokens the -fig flag accepts.
var validFigs = map[string]bool{
	"all": true, "1": true, "2": true, "8": true, "9": true, "10": true,
	"11": true, "12": true, "13": true, "14": true, "15": true, "fault": true,
}

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 1,2,8,9,10,11,12,13,14,15, 'fault' or 'all'")
		ops     = flag.Int("ops", 4000, "approximate memory operations per CPU (scale)")
		seed    = flag.Int64("seed", 3, "workload random seed")
		cpus    = flag.Int("cpus", 12, "number of simulated CPUs")
		bench   = flag.String("bench", "HPCG", "benchmark for figure 10")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		chart   = flag.Bool("chart", false, "append ASCII bar charts to figures 8 and 15")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = all cores, 1 = serial)")
		replay  = flag.String("trace", "", "replay a binary trace file (from tracegen/rvsim) instead of running the benchmark suite")
		asJSON  = flag.Bool("json", false, "with -trace: emit the full results as JSON")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		exectrace  = flag.String("exectrace", "", "write a runtime execution trace to this file (-trace is taken by replay)")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *replay != "" {
		if err := replayTrace(*replay, *cpus, *asJSON); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, name := range hmccoal.Benchmarks() {
			desc, _ := hmccoal.DescribeBenchmark(name)
			fmt.Printf("%-9s %s\n", name, desc)
		}
		return
	}

	p := hmccoal.TraceParams{CPUs: *cpus, OpsPerCPU: *ops, Seed: *seed}
	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		f = strings.TrimSpace(f)
		if !validFigs[f] {
			fatal(fmt.Errorf("unknown figure %q (valid: 1, 2, 8, 9, 10, 11, 12, 13, 14, 15, fault, all)", f))
		}
		want[f] = true
	}
	all := want["all"]
	need := func(f string) bool { return all || want[f] }

	if need("10") || need("fault") {
		if err := validBenchmark(*bench); err != nil {
			fatal(err)
		}
	}

	if need("1") {
		section("Figure 1 — bandwidth efficiency of HMC request packets")
		fmt.Print(hmccoal.Figure1Table())
	}
	if need("2") {
		section("Figure 2 — control overhead of different requested data size")
		fmt.Print(hmccoal.Figure2Table())
	}

	needsRuns := false
	for _, f := range []string{"8", "9", "10", "11", "12", "13", "15"} {
		if need(f) {
			needsRuns = true
		}
	}
	var runs []hmccoal.BenchmarkRun
	if needsRuns {
		fmt.Fprintf(os.Stderr, "running %d benchmarks × 3 architectures at %d ops/CPU…\n",
			len(hmccoal.Benchmarks()), *ops)
		var err error
		runs, err = hmccoal.RunAllContext(ctx, p, sweepOptions(*workers))
		fmt.Fprintln(os.Stderr)
		if err != nil {
			fatal(err)
		}
	}

	if need("8") {
		section("Figure 8 — coalescing efficiency")
		fmt.Print(hmccoal.Figure8Table(runs))
		if *chart {
			fmt.Printf("\n%s", hmccoal.Figure8Chart(runs))
		}
	}
	if need("9") {
		section("Figure 9 — bandwidth efficiency of coalesced and raw requests")
		fmt.Print(hmccoal.Figure9Table(runs))
	}
	if need("10") {
		section(fmt.Sprintf("Figure 10 — coalesced HMC request distribution of %s", *bench))
		for _, r := range runs {
			if r.Name == *bench {
				fmt.Print(hmccoal.Figure10Table(r))
			}
		}
	}
	if need("11") {
		section("Figure 11 — bandwidth saving")
		fmt.Print(hmccoal.Figure11Table(runs))
	}
	if need("12") {
		section("Figure 12 — average latency of coalescing in the DMC unit")
		fmt.Print(hmccoal.Figure12Table(runs))
	}
	if need("13") {
		section("Figure 13 — average time cost of filling up the CRQ")
		fmt.Print(hmccoal.Figure13Table(runs))
	}
	if need("14") {
		section("Figure 14 — average coalescer latency vs timeout T")
		table, err := hmccoal.Figure14TableContext(ctx, p, nil, sweepOptions(*workers))
		fmt.Fprintln(os.Stderr)
		if err != nil {
			fatal(err)
		}
		fmt.Print(table)
	}
	if need("15") {
		section("Figure 15 — performance improvement with memory coalescer")
		fmt.Print(hmccoal.Figure15Table(runs))
		if *chart {
			fmt.Printf("\n%s", hmccoal.Figure15Chart(runs))
		}
	}
	if need("fault") {
		section(fmt.Sprintf("Fault sweep — efficiency and speedup vs link error rate (%s)", *bench))
		rows, err := hmccoal.FaultSweepContext(ctx, *bench, p, uint64(*seed), nil, sweepOptions(*workers))
		fmt.Fprintln(os.Stderr)
		if err != nil {
			fatal(err)
		}
		fmt.Print(hmccoal.FaultSweepTable(rows))
	}
}

// replayTrace runs a captured trace file under the conventional MHA and
// the memory coalescer and prints both summaries.
func replayTrace(path string, cpus int, asJSON bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	accs, err := trace.NewReader(f).ReadAll()
	if err != nil {
		return err
	}
	accs = trace.Merge(accs) // captured traces may be loosely ordered
	if !asJSON {
		fmt.Println(trace.Summarize(accs))
	}
	results := map[string]hmccoal.Result{}
	for _, mode := range []hmccoal.Mode{hmccoal.ModeBaseline, hmccoal.ModeTwoPhase} {
		cfg := hmccoal.DefaultConfig()
		cfg.Hierarchy.CPUs = cpus
		cfg.Mode = mode
		sys, err := hmccoal.NewSystem(cfg)
		if err != nil {
			return err
		}
		res, err := sys.Run(accs)
		if err != nil {
			return err
		}
		if asJSON {
			results[mode.String()] = res
			continue
		}
		section(fmt.Sprintf("%v", mode))
		fmt.Print(res.Summary())
		fmt.Printf("\ndevice packet sizes:\n%s", hmccoal.PacketSizeTable(res))
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}

// sweepOptions wires the worker count and a stderr progress meter into a
// parallel sweep. Progress goes to stderr only, so stdout stays
// byte-identical at any worker count.
func sweepOptions(workers int) hmccoal.SweepOptions {
	return hmccoal.SweepOptions{
		Workers: workers,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d simulations", done, total)
		},
	}
}

// validBenchmark rejects names that are not in the benchmark suite.
func validBenchmark(name string) error {
	for _, n := range hmccoal.Benchmarks() {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown benchmark %q (have %v)", name, hmccoal.Benchmarks())
}

func section(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmccoal:", err)
	os.Exit(1)
}
