// Command tracegen synthesizes a benchmark's multi-core memory trace and
// writes it to a file in the binary or text trace format.
//
// Usage:
//
//	tracegen -bench FT -ops 10000 -o ft.trace
//	tracegen -bench HPCG -format text -o hpcg.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"hmccoal"
	"hmccoal/internal/trace"
)

func main() {
	var (
		bench  = flag.String("bench", "FT", "benchmark to generate (see -list)")
		ops    = flag.Int("ops", 10000, "approximate memory operations per CPU")
		cpus   = flag.Int("cpus", 12, "number of CPUs")
		seed   = flag.Int64("seed", 1, "random seed")
		think  = flag.Float64("think", 1.0, "compute think-time multiplier (lower = more memory-bound)")
		out    = flag.String("o", "", "output file (default: <bench>.trace)")
		format = flag.String("format", "binary", "output format: binary or text")
		list   = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range hmccoal.Benchmarks() {
			desc, _ := hmccoal.DescribeBenchmark(name)
			fmt.Printf("%-9s %s\n", name, desc)
		}
		return
	}

	accs, err := hmccoal.GenerateTrace(*bench, hmccoal.TraceParams{
		CPUs: *cpus, OpsPerCPU: *ops, Seed: *seed, ThinkScale: *think,
	})
	if err != nil {
		fatal(err)
	}

	path := *out
	if path == "" {
		path = *bench + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	switch *format {
	case "binary":
		w := trace.NewWriter(f)
		if err := w.WriteAll(accs); err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	case "text":
		if err := trace.WriteText(f, accs); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	fmt.Println(trace.Summarize(accs))
	fmt.Printf("wrote %d accesses to %s (%s)\n", len(accs), path, *format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
