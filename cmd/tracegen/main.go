// Command tracegen synthesizes a benchmark's multi-core memory trace and
// writes it to a file in the binary or text trace format.
//
// Usage:
//
//	tracegen -bench FT -ops 10000 -o ft.trace
//	tracegen -bench HPCG -format text -o hpcg.txt
//
// Exit codes: 0 success, 1 usage/configuration error (unknown benchmark
// or format, unwritable path), 2 run failure (trace generation or write
// error).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"hmccoal"
	"hmccoal/internal/trace"
)

// Exit codes: flag/config mistakes are the user's to fix (1); a failed
// generation or write is the run's fault (2).
const (
	exitUsage = 1
	exitRun   = 2
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		bench  = fs.String("bench", "FT", "benchmark to generate (see -list)")
		ops    = fs.Int("ops", 10000, "approximate memory operations per CPU")
		cpus   = fs.Int("cpus", 12, "number of CPUs")
		seed   = fs.Int64("seed", 1, "random seed")
		think  = fs.Float64("think", 1.0, "compute think-time multiplier (lower = more memory-bound)")
		out    = fs.String("o", "", "output file (default: <bench>.trace)")
		format = fs.String("format", "binary", "output format: binary or text")
		list   = fs.Bool("list", false, "list benchmarks and exit")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return exitUsage
	}

	if *list {
		for _, name := range hmccoal.Benchmarks() {
			desc, _ := hmccoal.DescribeBenchmark(name)
			fmt.Printf("%-9s %s\n", name, desc)
		}
		return 0
	}
	if *format != "binary" && *format != "text" {
		return usageErr(fmt.Errorf("unknown format %q (want binary or text)", *format))
	}

	accs, err := hmccoal.GenerateTrace(*bench, hmccoal.TraceParams{
		CPUs: *cpus, OpsPerCPU: *ops, Seed: *seed, ThinkScale: *think,
	})
	if err != nil {
		return usageErr(err)
	}

	path := *out
	if path == "" {
		path = *bench + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		return usageErr(err)
	}
	defer f.Close()

	switch *format {
	case "binary":
		w := trace.NewWriter(f)
		if err := w.WriteAll(accs); err != nil {
			return runErr(err)
		}
		if err := w.Flush(); err != nil {
			return runErr(err)
		}
	case "text":
		if err := trace.WriteText(f, accs); err != nil {
			return runErr(err)
		}
	}
	if err := f.Close(); err != nil {
		return runErr(fmt.Errorf("closing %s: %w", path, err))
	}
	fmt.Println(trace.Summarize(accs))
	fmt.Printf("wrote %d accesses to %s (%s)\n", len(accs), path, *format)
	return 0
}

// usageErr reports a configuration mistake (exit 1); runErr reports a
// failed generation or write (exit 2).
func usageErr(err error) int {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	return exitUsage
}

func runErr(err error) int {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	return exitRun
}
