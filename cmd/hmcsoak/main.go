// Command hmcsoak is the seeded chaos harness: it sweeps a randomized grid
// of workload × fault-config × timeout scenarios with the runtime invariant
// checker enabled, shrinks any violation to a minimal repro JSON, and
// replays saved repros.
//
// Usage:
//
//	hmcsoak -seed 1 -runs 50                 # a 50-scenario campaign
//	hmcsoak -runs 200 -workers 4 -v          # bigger grid, live progress
//	hmcsoak -replay testdata/repros/r.json   # replay a saved repro
//
// Exit codes: 0 clean, 1 usage/configuration error, 2 violation found (or
// a replayed repro still failing).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"hmccoal/internal/frontend"
	"hmccoal/internal/membackend"
	"hmccoal/internal/soak"
)

const (
	exitUsage     = 1
	exitViolation = 2
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("hmcsoak", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 1, "soak seed; the whole scenario grid is a pure function of it")
		runs      = fs.Int("runs", 50, "number of scenarios to run")
		workers   = fs.Int("workers", 0, "worker pool size (0 = all cores)")
		timeout   = fs.Duration("timeout", 2*time.Minute, "per-scenario wall-clock budget (0 = unbounded)")
		reproDir  = fs.String("repro-dir", "testdata/repros", "directory for shrunken repro files ('' disables)")
		budget    = fs.Int("shrink-budget", soak.DefaultShrinkBudget, "max re-runs the shrinker may spend per failure")
		replay    = fs.String("replay", "", "replay a repro JSON file instead of soaking")
		ckpt      = fs.String("checkpoint", "", "JSONL checkpoint file: completed scenarios persist and an interrupted campaign resumes from it")
		backend   = fs.String("backend", "hmc", "memory backend to soak: hmc, ddr or ideal")
		frontendF = fs.String("frontend", "two-phase", "coalescing front-end to soak: two-phase or warp")
		sched     = fs.String("sched", "frfcfs", "issue policy inside the front-end: frfcfs or hetero")
		verbose   = fs.Bool("v", false, "print per-scenario progress")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return exitUsage
	}

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "hmcsoak: -workers must be ≥ 0, got %d\n", *workers)
		return exitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *replay != "" {
		return replayRepro(*replay)
	}

	if *runs <= 0 {
		fmt.Fprintln(os.Stderr, "hmcsoak: -runs must be positive")
		return exitUsage
	}

	kind, err := membackend.ParseKind(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmcsoak:", err)
		return exitUsage
	}
	feKind, err := frontend.ParseKind(*frontendF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmcsoak:", err)
		return exitUsage
	}
	schedKind, err := frontend.ParseSched(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmcsoak:", err)
		return exitUsage
	}

	opts := soak.Options{
		Seed: *seed, Runs: *runs, Workers: *workers,
		JobTimeout: *timeout, ReproDir: *reproDir, ShrinkBudget: *budget,
		Backend: kind, Frontend: feKind, Sched: schedKind, Checkpoint: *ckpt,
	}
	if *verbose {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsoak: %d/%d scenarios", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	rep, err := soak.Soak(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmcsoak: %v\n", err)
		return exitUsage
	}

	fmt.Printf("soak seed=%d: %d scenarios — %d clean, %d expected fault outcomes, %d failures\n",
		rep.Seed, rep.Runs, rep.Clean, rep.Expected, len(rep.Failures))
	if len(rep.Failures) == 0 {
		return 0
	}
	for _, f := range rep.Failures {
		fmt.Printf("\nFAIL %v\n  %s\n", f.Scenario, f.Err)
		if f.ReproPath != "" {
			fmt.Printf("  repro: %s (trace %d -> %d accesses, %d shrink steps)\n",
				f.ReproPath, f.Repro.OrigLen, f.Repro.PrefixLen, f.Repro.ShrinkSteps)
			fmt.Printf("  replay: hmcsoak -replay %s\n", f.ReproPath)
		} else if f.WriteErr != "" {
			fmt.Printf("  repro not written: %s\n", f.WriteErr)
		}
	}
	return exitViolation
}

// replayRepro re-runs a saved repro. A repro that still fails exits 2 —
// that is the file doing its job; 0 means the underlying bug is gone.
func replayRepro(path string) int {
	r, err := soak.ReadRepro(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmcsoak: %v\n", err)
		return exitUsage
	}
	fmt.Printf("replaying %s\n  %v\n  original error: %s\n", path, r.Scenario, r.Error)
	err = soak.Replay(r, nil)
	if soak.Classify(r.Scenario, err) == soak.Failed {
		fmt.Printf("still failing: %v\n", err)
		return exitViolation
	}
	fmt.Println("no longer failing — violation is fixed")
	return 0
}
