package main

import "testing"

// TestFlagValidation pins the usage exit code for malformed soak flags.
func TestFlagValidation(t *testing.T) {
	for name, argv := range map[string][]string{
		"negative workers": {"-workers", "-3", "-runs", "1"},
		"zero runs":        {"-runs", "0"},
		"negative runs":    {"-runs", "-5"},
		"bad backend":      {"-backend", "sram", "-runs", "1"},
	} {
		if code := run(argv); code != exitUsage {
			t.Errorf("%s (%v): exit %d, want %d", name, argv, code, exitUsage)
		}
	}
}
