// Command rvsim assembles and runs an RV64I program on the emulator,
// optionally writing its memory trace — the paper's Spike-and-tracer
// methodology (§5.1) as a standalone tool.
//
// Usage:
//
//	rvsim prog.s                   # run, print registers
//	rvsim -trace out.trace prog.s  # also capture the memory trace
//	rvsim -kernel vecadd -n 1024   # run a built-in kernel
package main

import (
	"flag"
	"fmt"
	"os"

	"hmccoal/internal/riscv"
	"hmccoal/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "write the memory trace to this file (binary format)")
		kernel    = flag.String("kernel", "", "built-in kernel instead of a source file: vecadd, vecadd8, gather, reduce")
		n         = flag.Int("n", 1024, "elements for built-in kernels")
		maxSteps  = flag.Int("max-steps", 1<<26, "instruction budget")
		cpi       = flag.Uint64("cpi", 1, "cycles charged per instruction in trace timestamps")
		dump      = flag.Bool("dump", false, "print the disassembled program before running")
	)
	flag.Parse()

	var src string
	switch *kernel {
	case "vecadd":
		src = riscv.VecAddProgram(*n)
	case "vecadd8":
		src = riscv.VecAddUnrolledProgram(*n)
	case "gather":
		src = riscv.GatherProgram(*n)
	case "reduce":
		src = riscv.ReduceProgram(*n)
	case "":
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("need an assembly file or -kernel"))
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fatal(fmt.Errorf("unknown kernel %q", *kernel))
	}

	prog, err := riscv.Assemble(src)
	if err != nil {
		fatal(err)
	}
	if *dump {
		fmt.Print(riscv.DisassembleAll(prog, 0x1000))
	}
	cpu := riscv.NewCPU()
	cpu.InstrTicks = *cpi

	var tw *trace.Writer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tw = trace.NewWriter(f)
		defer tw.Flush()
		cpu.SetTracer(func(a trace.Access) {
			if err := tw.Write(a); err != nil {
				fatal(err)
			}
		})
	}

	// Built-in kernels read their operands from KernelABase/KernelBBase;
	// seed them with a simple ramp so results are checkable.
	if *kernel != "" {
		var buf [8]byte
		for i := 0; i < *n; i++ {
			for b := range buf {
				buf[b] = byte((i + b) >> (8 * (b % 2)))
			}
			cpu.WriteMem(riscv.KernelABase+uint64(i)*8, buf[:])
			cpu.WriteMem(riscv.KernelBBase+uint64(i)*8, buf[:])
		}
	}

	cpu.LoadProgram(0x1000, prog)
	steps, err := cpu.Run(*maxSteps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("retired %d instructions over %d cycles\n", steps, cpu.Cycle)
	for i := 10; i <= 17; i++ { // a0-a7
		fmt.Printf("  a%d = %#x\n", i-10, cpu.X[i])
	}
	if tw != nil {
		fmt.Printf("traced %d memory events to %s\n", tw.Count(), *tracePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvsim:", err)
	os.Exit(1)
}
