// Command rvsim assembles and runs an RV64I program on the emulator,
// optionally writing its memory trace — the paper's Spike-and-tracer
// methodology (§5.1) as a standalone tool.
//
// Usage:
//
//	rvsim prog.s                   # run, print registers
//	rvsim -trace out.trace prog.s  # also capture the memory trace
//	rvsim -kernel vecadd -n 1024   # run a built-in kernel
//
// Exit codes: 0 success, 1 usage/configuration error (bad flags, missing
// or unassemblable source), 2 run failure (emulator fault, trace write
// error).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"hmccoal/internal/riscv"
	"hmccoal/internal/trace"
)

// Exit codes: flag/program mistakes are the user's to fix (1); a failed
// emulation or trace capture is the run's fault (2).
const (
	exitUsage = 1
	exitRun   = 2
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("rvsim", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "write the memory trace to this file (binary format)")
		kernel    = fs.String("kernel", "", "built-in kernel instead of a source file: vecadd, vecadd8, gather, reduce")
		n         = fs.Int("n", 1024, "elements for built-in kernels")
		maxSteps  = fs.Int("max-steps", 1<<26, "instruction budget")
		cpi       = fs.Uint64("cpi", 1, "cycles charged per instruction in trace timestamps")
		dump      = fs.Bool("dump", false, "print the disassembled program before running")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return exitUsage
	}

	var src string
	switch *kernel {
	case "vecadd":
		src = riscv.VecAddProgram(*n)
	case "vecadd8":
		src = riscv.VecAddUnrolledProgram(*n)
	case "gather":
		src = riscv.GatherProgram(*n)
	case "reduce":
		src = riscv.ReduceProgram(*n)
	case "":
		if fs.NArg() != 1 {
			return usageErr(fmt.Errorf("need an assembly file or -kernel"))
		}
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return usageErr(err)
		}
		src = string(data)
	default:
		return usageErr(fmt.Errorf("unknown kernel %q", *kernel))
	}

	prog, err := riscv.Assemble(src)
	if err != nil {
		return usageErr(err)
	}
	if *dump {
		fmt.Print(riscv.DisassembleAll(prog, 0x1000))
	}
	cpu := riscv.NewCPU()
	cpu.InstrTicks = *cpi

	// The tracer callback cannot abort the emulator, so the first write
	// failure is latched here and reported after the run.
	var (
		tf       *os.File
		tw       *trace.Writer
		traceErr error
	)
	if *tracePath != "" {
		tf, err = os.Create(*tracePath)
		if err != nil {
			return usageErr(err)
		}
		defer tf.Close()
		tw = trace.NewWriter(tf)
		cpu.SetTracer(func(a trace.Access) {
			if traceErr == nil {
				traceErr = tw.Write(a)
			}
		})
	}

	// Built-in kernels read their operands from KernelABase/KernelBBase;
	// seed them with a simple ramp so results are checkable.
	if *kernel != "" {
		var buf [8]byte
		for i := 0; i < *n; i++ {
			for b := range buf {
				buf[b] = byte((i + b) >> (8 * (b % 2)))
			}
			cpu.WriteMem(riscv.KernelABase+uint64(i)*8, buf[:])
			cpu.WriteMem(riscv.KernelBBase+uint64(i)*8, buf[:])
		}
	}

	cpu.LoadProgram(0x1000, prog)
	steps, err := cpu.Run(*maxSteps)
	if err != nil {
		return runErr(err)
	}
	if traceErr != nil {
		return runErr(fmt.Errorf("writing %s: %w", *tracePath, traceErr))
	}
	if tw != nil {
		if err := tw.Flush(); err != nil {
			return runErr(fmt.Errorf("writing %s: %w", *tracePath, err))
		}
		if err := tf.Close(); err != nil {
			return runErr(fmt.Errorf("closing %s: %w", *tracePath, err))
		}
	}

	fmt.Printf("retired %d instructions over %d cycles\n", steps, cpu.Cycle)
	for i := 10; i <= 17; i++ { // a0-a7
		fmt.Printf("  a%d = %#x\n", i-10, cpu.X[i])
	}
	if tw != nil {
		fmt.Printf("traced %d memory events to %s\n", tw.Count(), *tracePath)
	}
	return 0
}

// usageErr reports a configuration mistake (exit 1); runErr reports a
// failed emulation or trace capture (exit 2).
func usageErr(err error) int {
	fmt.Fprintln(os.Stderr, "rvsim:", err)
	return exitUsage
}

func runErr(err error) int {
	fmt.Fprintln(os.Stderr, "rvsim:", err)
	return exitRun
}
