package hmccoal

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"hmccoal/internal/cache"
	"hmccoal/internal/sim"
)

// This file is the distributed half of the sweep layer: a sweep grid as a
// serializable value. A SweepSpec plus a grid index is a pure description
// of one simulation job — benchmark trace, configuration, display name —
// identical on the coordinator and on every dsweep worker process, so a
// worker can reconstruct any job from the spec alone (traces are seeded
// and regenerate deterministically; nothing bulky crosses the wire). Both
// the in-process sweep path and the remote workers execute groups through
// the same compiled grid and runSpecGroup, which is what makes the
// distributed output byte-identical to -workers 1 by construction.

// SweepKind enumerates the distributable sweep grids.
type SweepKind string

// The sweep grids of the evaluation pipeline.
const (
	// SweepRunAll is the (benchmark × {3 architectures, payload analysis})
	// grid behind Figures 8–13 and 15.
	SweepRunAll SweepKind = "runall"
	// SweepFig14 is the (benchmark × timeout) grid of Figure 14.
	SweepFig14 SweepKind = "fig14"
	// SweepTimeout is one benchmark's timeout sweep.
	SweepTimeout SweepKind = "timeout"
	// SweepMSHR is one benchmark's MSHR-entries sweep.
	SweepMSHR SweepKind = "mshr"
	// SweepSpeedup is the (benchmark × {MSHR-based, two-phase}) grid of
	// the backend-attributed speedup study.
	SweepSpeedup SweepKind = "speedup"
	// SweepFault is one benchmark's (error rate × 3 architectures) grid.
	SweepFault SweepKind = "fault"
	// SweepStride is the (stride microbenchmark × {front-end × scheduler})
	// grid of the front-end efficiency ladder.
	SweepStride SweepKind = "stride"
)

// SweepSpec is the serializable description of one sweep grid. It is the
// unit the dsweep wire protocol ships: JSON-encoded, it travels inside
// every job message, and (spec, index) fully determines a job on any
// process — same trace generator seed, same configuration, same batch
// lane width.
type SweepSpec struct {
	Kind   SweepKind   `json:"kind"`
	Params TraceParams `json:"params"`
	// Bench is the single benchmark of SweepTimeout/SweepMSHR/SweepFault
	// grids; Benches the benchmark axis of multi-benchmark grids. They
	// are carried explicitly so a worker never depends on its own
	// binary's benchmark list ordering.
	Bench    string    `json:"bench,omitempty"`
	Benches  []string  `json:"benches,omitempty"`
	Timeouts []uint64  `json:"timeouts,omitempty"`
	Entries  []int     `json:"entries,omitempty"`
	BERs     []float64 `json:"bers,omitempty"`
	// Seed is the fault-injection seed of SweepFault grids.
	Seed uint64 `json:"seed,omitempty"`
	// Checks enables the runtime invariant checker in every job.
	Checks bool `json:"checks,omitempty"`
	// Backend names the memory backend ("" is the default HMC).
	Backend string `json:"backend,omitempty"`
	// Frontend and Sched name the coalescing front-end and its issue
	// policy ("" are the two-phase / FR-FCFS defaults). SweepStride grids
	// sweep both axes themselves and ignore these.
	Frontend string `json:"frontend,omitempty"`
	Sched    string `json:"sched,omitempty"`
	// Batch is the lockstep lane width each executor runs its groups on.
	Batch int `json:"batch,omitempty"`
}

// Dispatcher ships sweep job groups to external executors. RunGroup
// blocks until the group completes somewhere and returns one JSON-encoded
// SweepCell per index, in index order; the dsweep coordinator
// (internal/dsweep.Coordinator) is the canonical implementation, handing
// groups to worker processes with work-stealing and crash requeue.
type Dispatcher interface {
	RunGroup(ctx context.Context, spec []byte, idxs []int) ([]json.RawMessage, error)
}

// SweepCell is the universal per-job result of a sweep grid: the
// simulation Result, or the payload analysis for the RunAll grid's
// analysis jobs. It is what crosses the dsweep wire and what checkpoint
// lines of the RunAll grid store (the JSON shape predates the type — old
// checkpoints keep restoring).
type SweepCell struct {
	Res Result          `json:"res"`
	Pay PayloadAnalysis `json:"pay"`
}

// sweepGrid is a compiled SweepSpec: the validated job count plus
// non-failing per-job accessors. cfg and name must only be called for
// non-payload indices.
type sweepGrid struct {
	base     Config
	benches  []string
	perBench int // jobs per benchmark; job i runs benchmark i/perBench
	cfg      func(i int) Config
	name     func(i int) string
	payload  func(i int) bool // nil: no payload-analysis jobs in this grid
}

// n is the grid's total job count.
func (g *sweepGrid) n() int { return len(g.benches) * g.perBench }

func (g *sweepGrid) isPayload(i int) bool { return g.payload != nil && g.payload(i) }

// compile validates a spec and returns its grid. The switch below is the
// single definition of every grid's geometry — the local drivers and the
// remote workers both run jobs through it, so their configurations cannot
// diverge.
func (s SweepSpec) compile() (*sweepGrid, error) {
	backend, err := ParseBackend(s.Backend)
	if err != nil {
		return nil, fmt.Errorf("hmccoal: sweep spec: %w", err)
	}
	fe, err := ParseFrontend(s.Frontend)
	if err != nil {
		return nil, fmt.Errorf("hmccoal: sweep spec: %w", err)
	}
	sched, err := ParseSched(s.Sched)
	if err != nil {
		return nil, fmt.Errorf("hmccoal: sweep spec: %w", err)
	}
	base := DefaultConfig()
	base.Checks = s.Checks
	base.Backend = backend
	base.Frontend = fe
	base.Sched = sched

	g := &sweepGrid{base: base}
	one := func() []string { return []string{s.Bench} }
	switch s.Kind {
	case SweepRunAll:
		g.benches, g.perBench = s.Benches, runAllKinds
		g.cfg = func(i int) Config {
			cfg := base
			cfg.Mode = runAllModes[i%runAllKinds]
			return cfg
		}
		g.name = func(i int) string {
			return fmt.Sprintf("%s/%v", g.benches[i/runAllKinds], runAllModes[i%runAllKinds])
		}
		g.payload = func(i int) bool { return i%runAllKinds == runAllKinds-1 }
	case SweepFig14, SweepTimeout:
		if s.Kind == SweepFig14 {
			g.benches = s.Benches
		} else {
			g.benches = one()
		}
		g.perBench = len(s.Timeouts)
		g.cfg = func(i int) Config {
			cfg := base
			cfg.Coalescer.TimeoutCycles = s.Timeouts[i%g.perBench]
			return cfg
		}
		g.name = func(i int) string {
			return fmt.Sprintf("%s/T=%d", g.benches[i/g.perBench], s.Timeouts[i%g.perBench])
		}
	case SweepMSHR:
		g.benches, g.perBench = one(), len(s.Entries)
		g.cfg = func(i int) Config {
			cfg := base
			cfg.Coalescer.MSHR.Entries = s.Entries[i%g.perBench]
			return cfg
		}
		g.name = func(i int) string {
			return fmt.Sprintf("%s/mshr=%d", g.benches[i/g.perBench], s.Entries[i%g.perBench])
		}
	case SweepSpeedup:
		g.benches, g.perBench = s.Benches, len(speedupModes)
		g.cfg = func(i int) Config {
			cfg := base
			cfg.Mode = speedupModes[i%g.perBench]
			return cfg
		}
		g.name = func(i int) string {
			return fmt.Sprintf("%s/%v", g.benches[i/g.perBench], speedupModes[i%g.perBench])
		}
	case SweepFault:
		nModes := len(runAllModes)
		g.benches, g.perBench = one(), len(s.BERs)*nModes
		g.cfg = func(i int) Config {
			cfg := base
			cfg.HMC.Fault.Seed = s.Seed
			cfg.HMC.Fault.BER = s.BERs[(i%g.perBench)/nModes]
			cfg.Mode = runAllModes[i%nModes]
			return cfg
		}
		g.name = func(i int) string {
			return fmt.Sprintf("%s/ber=%g/%v", g.benches[i/g.perBench], s.BERs[(i%g.perBench)/nModes], runAllModes[i%nModes])
		}
	case SweepStride:
		g.benches, g.perBench = s.Benches, len(strideCombos)
		g.cfg = func(i int) Config {
			cfg := base
			c := strideCombos[i%g.perBench]
			cfg.Frontend, cfg.Sched = c.fe, c.sched
			return cfg
		}
		g.name = func(i int) string {
			c := strideCombos[i%g.perBench]
			return fmt.Sprintf("%s/%v/%v", g.benches[i/g.perBench], c.fe, c.sched)
		}
	default:
		return nil, fmt.Errorf("hmccoal: sweep spec: unknown kind %q", s.Kind)
	}
	if len(g.benches) == 0 || g.perBench == 0 {
		return nil, fmt.Errorf("hmccoal: sweep spec: empty %s grid", s.Kind)
	}
	for _, b := range g.benches {
		if b == "" {
			return nil, fmt.Errorf("hmccoal: sweep spec: empty benchmark name in %s grid", s.Kind)
		}
	}
	return g, nil
}

// batchLanes is the lockstep lane width for a group of n jobs under a
// requested batch width.
func batchLanes(batch, n int) int {
	if batch < 1 {
		batch = 1
	}
	if batch > n {
		batch = n
	}
	return batch
}

// runSpecGroup executes grid indices idxs of a compiled grid: simulation
// jobs run together on batch lockstep lanes, payload-analysis jobs on one
// shared (reset per analysis) hierarchy, and benchmark b's trace comes
// from trace(b) — the local refcounted table or a worker's cache. One
// cell per index, in index order.
func runSpecGroup(g *sweepGrid, batch int, idxs []int, trace func(b int) ([]Access, *TraceIndex, error)) ([]SweepCell, error) {
	out := make([]SweepCell, len(idxs))
	var jobs []BatchJob
	var slot []int
	var payHier *cache.Hierarchy
	for k, i := range idxs {
		accs, idx, err := trace(i / g.perBench)
		if err != nil {
			return nil, err
		}
		if g.isPayload(i) {
			if payHier == nil {
				if payHier, err = cache.NewHierarchy(g.base.Hierarchy); err != nil {
					return nil, err
				}
			}
			pay, err := sim.AnalyzePayloadWith(payHier, accs, g.base.Coalescer.Width)
			if err != nil {
				return nil, err
			}
			out[k] = SweepCell{Pay: pay}
			continue
		}
		jobs = append(jobs, BatchJob{Name: g.name(i), Cfg: g.cfg(i), Accs: accs, Index: idx})
		slot = append(slot, k)
	}
	res, err := RunBatch(jobs, batchLanes(batch, len(jobs)))
	if err != nil {
		return nil, err
	}
	for k, r := range res {
		out[slot[k]].Res = r
	}
	return out, nil
}

// traceCacheEntries bounds a worker's resident traces: groups of one grid
// interleave a handful of benchmarks, and a few extra slots ride out the
// boundary between consecutive sweeps.
const traceCacheEntries = 6

// traceKey identifies one generated trace+index pair.
type traceKey struct {
	bench string
	p     TraceParams
	cpus  int
}

// TraceCacheStats counts a worker's trace-cache behavior across every
// group it ran: a hit is a group finding its benchmark's trace already
// resident (or being generated by a concurrent slot), a miss pays a full
// generation, and an eviction drops the oldest resident trace past the
// cache cap. The counters are monotonic over a SweepRunner's lifetime;
// the dsweep protocol ships them back with every result so the
// coordinator's Status() can show cache effectiveness per worker.
type TraceCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// traceCache shares generated traces across a worker's job groups (and
// its concurrent slots), evicting the oldest entry beyond the cap.
// Distinct benchmarks generate concurrently; same-benchmark callers
// serialize on the entry.
type traceCache struct {
	mu    sync.Mutex
	keys  []traceKey
	m     map[traceKey]*traceCacheEntry
	stats TraceCacheStats
}

type traceCacheEntry struct {
	mu    sync.Mutex
	accs  []Access
	idx   *TraceIndex
	err   error
	built bool
}

func (c *traceCache) get(bench string, p TraceParams, cpus int) ([]Access, *TraceIndex, error) {
	key := traceKey{bench: bench, p: p, cpus: cpus}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[traceKey]*traceCacheEntry)
	}
	e, ok := c.m[key]
	if !ok {
		c.stats.Misses++
		e = &traceCacheEntry{}
		c.m[key] = e
		c.keys = append(c.keys, key)
		if len(c.keys) > traceCacheEntries {
			c.stats.Evictions++
			delete(c.m, c.keys[0])
			c.keys = c.keys[1:]
		}
	} else {
		c.stats.Hits++
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.built {
		e.built = true
		e.accs, e.err = GenerateTrace(bench, p)
		if e.err == nil {
			e.idx, e.err = NewTraceIndex(e.accs, cpus)
		}
	}
	return e.accs, e.idx, e.err
}

// SweepRunner is the worker-side executor for distributed sweep groups:
// Run is the function a dsweep worker hands every job it pulls, and
// CacheStats exposes the trace cache's hit/miss/eviction counters for the
// Result protocol (dsweep.WorkOptions.CacheStats).
type SweepRunner struct {
	cache traceCache
}

// NewSweepRunner builds the worker-side executor. Run decodes the
// SweepSpec, regenerates the group's benchmark traces (cached across
// groups, so a sweep's repeat visits to one benchmark pay generation
// once), runs the simulation jobs on the spec's lockstep lanes and
// returns one JSON-encoded SweepCell per index. Errors are deterministic
// job failures; the coordinator fails the group rather than retrying them
// elsewhere.
func NewSweepRunner() *SweepRunner { return &SweepRunner{} }

// CacheStats snapshots the runner's trace-cache counters. Safe for
// concurrent use with Run.
func (r *SweepRunner) CacheStats() TraceCacheStats {
	r.cache.mu.Lock()
	defer r.cache.mu.Unlock()
	return r.cache.stats
}

// Run executes one sweep job group; it has the dsweep.GroupRunner shape.
func (r *SweepRunner) Run(ctx context.Context, rawSpec []byte, idxs []int) ([]json.RawMessage, error) {
	var spec SweepSpec
	if err := json.Unmarshal(rawSpec, &spec); err != nil {
		return nil, fmt.Errorf("hmccoal: sweep spec: %w", err)
	}
	g, err := spec.compile()
	if err != nil {
		return nil, err
	}
	for _, i := range idxs {
		if i < 0 || i >= g.n() {
			return nil, fmt.Errorf("hmccoal: job index %d outside the %d-job %s grid", i, g.n(), spec.Kind)
		}
	}
	cells, err := runSpecGroup(g, spec.Batch, idxs, func(b int) ([]Access, *TraceIndex, error) {
		return r.cache.get(g.benches[b], spec.Params, g.base.Hierarchy.CPUs)
	})
	if err != nil {
		return nil, err
	}
	raw := make([]json.RawMessage, len(cells))
	for k := range cells {
		if raw[k], err = json.Marshal(cells[k]); err != nil {
			return nil, fmt.Errorf("hmccoal: encode cell %d: %w", idxs[k], err)
		}
	}
	return raw, nil
}
