package hmccoal

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestBatchedSweepDeterminism is the batch engine's contract at the driver
// layer: a sweep run with lockstep batching (-batch) must produce
// byte-identical results to the serial per-job pipeline, at any width.
func TestBatchedSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	p := sweepTestParams()
	serial, err := RunAllContext(context.Background(), p, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 2, 8} {
		batched, err := RunAllContext(context.Background(), p, SweepOptions{Workers: 1, Batch: batch})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if !reflect.DeepEqual(serial, batched) {
			t.Fatalf("batch=%d: results differ from serial sweep", batch)
		}
		a, _ := json.Marshal(serial)
		b, _ := json.Marshal(batched)
		if string(a) != string(b) {
			t.Fatalf("batch=%d: serialized results differ", batch)
		}
	}
	// Batching and parallelism compose.
	both, err := RunAllContext(context.Background(), p, SweepOptions{Workers: 3, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, both) {
		t.Fatal("workers=3 batch=4: results differ from serial sweep")
	}
}

// TestBatchedTimeoutAndFaultSweeps checks the remaining batched drivers
// against their serial outputs.
func TestBatchedTimeoutAndFaultSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	p := sweepTestParams()

	timeouts := []uint64{16, 28}
	serialT, err := TimeoutSweepContext(context.Background(), "SG", p, timeouts, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	batchedT, err := TimeoutSweepContext(context.Background(), "SG", p, timeouts, SweepOptions{Workers: 1, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialT, batchedT) {
		t.Fatalf("timeout sweep differs: serial %v batched %v", serialT, batchedT)
	}

	bers := []float64{0, 1e-5}
	serialF, err := FaultSweepContext(context.Background(), "STREAM", p, 3, bers, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	batchedF, err := FaultSweepContext(context.Background(), "STREAM", p, 3, bers, SweepOptions{Workers: 1, Batch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialF, batchedF) {
		t.Fatal("fault sweep differs between batched and serial runs")
	}

	entries := []int{8, 16}
	serialM, err := MSHRSweepContext(context.Background(), "FT", p, entries, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	batchedM, err := MSHRSweepContext(context.Background(), "FT", p, entries, SweepOptions{Workers: 1, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialM, batchedM) {
		t.Fatalf("MSHR sweep differs: serial %v batched %v", serialM, batchedM)
	}
}

// TestTraceTableReleases pins the refcount contract: a benchmark's trace
// is generated on first get, stays resident while jobs are outstanding,
// and is dropped when the last job calls done.
func TestTraceTableReleases(t *testing.T) {
	names := []string{"STREAM", "EP"}
	tr := newTraceTable(names, sweepTestParams(), 2, 3)

	if tr.resident(0) || tr.resident(1) {
		t.Fatal("cells resident before first get")
	}
	accs, idx, err := tr.get(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) == 0 || idx == nil {
		t.Fatal("get returned an empty trace")
	}
	if !tr.resident(0) {
		t.Fatal("cell not resident after get")
	}
	if tr.resident(1) {
		t.Fatal("untouched benchmark generated eagerly")
	}

	// Same cell, same backing trace — shared, not regenerated.
	accs2, idx2, err := tr.get(0)
	if err != nil {
		t.Fatal(err)
	}
	if &accs[0] != &accs2[0] || idx != idx2 {
		t.Fatal("second get rebuilt the trace instead of sharing it")
	}

	tr.done(0)
	tr.done(0)
	if !tr.resident(0) {
		t.Fatal("cell dropped with a job still outstanding")
	}
	tr.done(0)
	if tr.resident(0) {
		t.Fatal("cell still resident after its last job completed")
	}
}

// TestFaultSweepTableNoData checks the speedup column: a row whose runs
// never executed renders "n/a", not a bogus 0% ratio; a real row renders
// its percentage.
func TestFaultSweepTableNoData(t *testing.T) {
	real := FaultSweepRow{BER: 1e-6}
	real.Baseline.RuntimeCycles = 2000
	real.TwoPhase.RuntimeCycles = 1500
	empty := FaultSweepRow{BER: 1e-5} // never ran: zero baseline

	if real.Speedup() != 0.25 {
		t.Fatalf("real row speedup %v, want 0.25", real.Speedup())
	}
	if empty.Speedup() != 0 || empty.HasData() {
		t.Fatal("empty row claims data")
	}

	table := FaultSweepTable([]FaultSweepRow{real, empty})
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want header + rule + 2 rows:\n%s", len(lines), table)
	}
	if !strings.Contains(lines[2], "25.00%") {
		t.Errorf("row with data lacks its speedup:\n%s", table)
	}
	if !strings.Contains(lines[3], "n/a") {
		t.Errorf("row without data does not render n/a:\n%s", table)
	}
}
