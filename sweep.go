package hmccoal

import (
	"context"
	"fmt"
	"sync"

	"hmccoal/internal/metrics"
	"hmccoal/internal/sweep"
)

// SweepOptions tunes the parallel evaluation sweeps (RunAllContext,
// Figure14TableContext, …).
type SweepOptions struct {
	// Workers is the simulation worker-pool size. 0 uses every core
	// (GOMAXPROCS); 1 reproduces the old strictly serial pipeline. The
	// results are byte-identical at any worker count — only wall-clock
	// changes.
	Workers int
	// Progress, when non-nil, is called after each simulation job
	// completes with the number of finished jobs and the grid size.
	// Calls are serialized across workers.
	Progress func(done, total int)
	// Checks enables the runtime invariant checker in every simulation of
	// the sweep. Results are identical either way (see sim.Config.Checks);
	// a violated conservation law surfaces as that job's error instead of
	// silent corruption.
	Checks bool
	// Checkpoint, when non-empty, persists each completed job to a JSONL
	// file so an interrupted sweep resumes without recomputing (see
	// sweep.Options.Checkpoint). Use a distinct file per sweep grid.
	Checkpoint string
	// Backend selects the memory device for every simulation of the sweep
	// (see Config.Backend). The zero value is the default HMC model; its
	// checkpoint lines stay untagged, so pre-backend checkpoints keep
	// resuming (sweep.Options.Backend).
	Backend BackendKind
}

func (o SweepOptions) engine() sweep.Options {
	opt := sweep.Options{Workers: o.Workers, Progress: o.Progress, Checkpoint: o.Checkpoint}
	if o.Backend != BackendHMC {
		opt.Backend = o.Backend.String()
	}
	return opt
}

// config is DefaultConfig with the sweep-wide toggles applied.
func (o SweepOptions) config() Config {
	cfg := DefaultConfig()
	cfg.Checks = o.Checks
	cfg.Backend = o.Backend
	return cfg
}

// traceCell lazily generates one benchmark's trace exactly once and shares
// the immutable []Access across every simulation job that needs it.
type traceCell struct {
	once sync.Once
	accs []Access
	err  error
}

// traceTable builds the per-benchmark lazy trace generators for a sweep.
func traceTable(names []string, p TraceParams) func(b int) ([]Access, error) {
	cells := make([]traceCell, len(names))
	return func(b int) ([]Access, error) {
		c := &cells[b]
		c.once.Do(func() { c.accs, c.err = GenerateTrace(names[b], p) })
		return c.accs, c.err
	}
}

// runMode builds a fresh system (sim.System is single-use) and replays the
// trace under the given miss-handling architecture.
func runMode(name string, m Mode, cfg Config, accs []Access) (Result, error) {
	cfg.Mode = m
	sys, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := sys.Run(accs)
	if err != nil {
		return Result{}, fmt.Errorf("%s/%v: %w", name, m, err)
	}
	return res, nil
}

// benchCell is one (benchmark × job-kind) slot of the RunAll grid.
type benchCell struct {
	Res Result          `json:"res"`
	Pay PayloadAnalysis `json:"pay"`
}

// The RunAll grid runs four independent jobs per benchmark: the three
// architectures of Figure 8 plus the payload-granularity analysis.
const runAllKinds = 4

var runAllModes = [3]Mode{ModeBaseline, ModeDMCOnly, ModeTwoPhase}

// RunAllContext executes every benchmark under all three architectures on
// a worker pool, fanning the (benchmark × mode) and (benchmark × payload
// analysis) jobs across opt.Workers goroutines. Each benchmark's trace is
// generated once and shared. Results are in figure order regardless of
// completion order; a cancelled ctx or the first job error aborts the
// sweep.
func RunAllContext(ctx context.Context, p TraceParams, opt SweepOptions) ([]BenchmarkRun, error) {
	names := Benchmarks()
	trace := traceTable(names, p)
	cells, err := sweep.Map(ctx, runAllKinds*len(names), opt.engine(),
		func(_ context.Context, i int) (benchCell, error) {
			b, kind := i/runAllKinds, i%runAllKinds
			accs, err := trace(b)
			if err != nil {
				return benchCell{}, err
			}
			if kind == runAllKinds-1 {
				pay, err := AnalyzePayload(opt.config(), accs)
				return benchCell{Pay: pay}, err
			}
			res, err := runMode(names[b], runAllModes[kind], opt.config(), accs)
			return benchCell{Res: res}, err
		})
	if err != nil {
		return nil, err
	}
	runs := make([]BenchmarkRun, len(names))
	for b, name := range names {
		runs[b] = BenchmarkRun{
			Name:     name,
			Baseline: cells[b*runAllKinds+0].Res,
			DMCOnly:  cells[b*runAllKinds+1].Res,
			TwoPhase: cells[b*runAllKinds+2].Res,
			Payload:  cells[b*runAllKinds+3].Pay,
		}
	}
	return runs, nil
}

// TimeoutSweepContext is TimeoutSweep on a worker pool: the benchmark's
// trace is generated once and the per-timeout runs fan out in parallel.
func TimeoutSweepContext(ctx context.Context, name string, p TraceParams, timeouts []uint64, opt SweepOptions) ([]float64, error) {
	if len(timeouts) == 0 {
		timeouts = defaultTimeouts()
	}
	accs, err := GenerateTrace(name, p)
	if err != nil {
		return nil, err
	}
	return sweep.Map(ctx, len(timeouts), opt.engine(),
		func(_ context.Context, i int) (float64, error) {
			cfg := opt.config()
			cfg.Coalescer.TimeoutCycles = timeouts[i]
			res, err := runMode(name, cfg.Mode, cfg, accs)
			if err != nil {
				return 0, err
			}
			return res.Coalescer.AvgRequestLatencyNs(res.ClockGHz), nil
		})
}

// Figure14TableContext renders the timeout sweep for every benchmark,
// fanning the full (benchmark × timeout) grid across the worker pool with
// one shared trace per benchmark.
func Figure14TableContext(ctx context.Context, p TraceParams, timeouts []uint64, opt SweepOptions) (string, error) {
	if len(timeouts) == 0 {
		timeouts = defaultTimeouts()
	}
	names := Benchmarks()
	trace := traceTable(names, p)
	lat, err := sweep.Map(ctx, len(names)*len(timeouts), opt.engine(),
		func(_ context.Context, i int) (float64, error) {
			b, t := i/len(timeouts), i%len(timeouts)
			accs, err := trace(b)
			if err != nil {
				return 0, err
			}
			cfg := opt.config()
			cfg.Coalescer.TimeoutCycles = timeouts[t]
			res, err := runMode(names[b], cfg.Mode, cfg, accs)
			if err != nil {
				return 0, err
			}
			return res.Coalescer.AvgRequestLatencyNs(res.ClockGHz), nil
		})
	if err != nil {
		return "", err
	}
	header := []string{"benchmark"}
	for _, to := range timeouts {
		header = append(header, fmt.Sprintf("T=%d", to))
	}
	rows := [][]string{header}
	for b, name := range names {
		row := []string{name}
		for t := range timeouts {
			row = append(row, metrics.Ns(lat[b*len(timeouts)+t]))
		}
		rows = append(rows, row)
	}
	return rows2(rows), nil
}

// speedupModes is the SpeedupTable grid: the conventional MHA against the
// full coalescer.
var speedupModes = [2]Mode{ModeBaseline, ModeTwoPhase}

// SpeedupTableContext renders the Figure 15 runtime-improvement study on a
// chosen memory backend: every benchmark under the conventional MHA and
// the two-phase coalescer, with runtimes and the relative improvement. The
// (benchmark × mode) grid fans across the worker pool with one shared
// trace per benchmark. Unlike Figure15Table it carries a backend column,
// so ddr/ideal runs are comparable against the HMC rows side by side.
func SpeedupTableContext(ctx context.Context, p TraceParams, opt SweepOptions) (string, error) {
	names := Benchmarks()
	trace := traceTable(names, p)
	nModes := len(speedupModes)
	cells, err := sweep.Map(ctx, len(names)*nModes, opt.engine(),
		func(_ context.Context, i int) (Result, error) {
			b, m := i/nModes, i%nModes
			accs, err := trace(b)
			if err != nil {
				return Result{}, err
			}
			return runMode(names[b], speedupModes[m], opt.config(), accs)
		})
	if err != nil {
		return "", err
	}
	rows := [][]string{{"benchmark", "backend", "MSHR-based", "two-phase", "improvement"}}
	var sum float64
	for b, name := range names {
		base, two := cells[b*nModes+0], cells[b*nModes+1]
		r := BenchmarkRun{Baseline: base, TwoPhase: two}
		rows = append(rows, []string{
			name,
			opt.Backend.String(),
			fmt.Sprintf("%d cyc", base.RuntimeCycles),
			fmt.Sprintf("%d cyc", two.RuntimeCycles),
			metrics.Pct(r.Speedup()),
		})
		sum += r.Speedup()
	}
	if len(names) > 0 {
		rows = append(rows, []string{"average", opt.Backend.String(), "", "", metrics.Pct(sum / float64(len(names)))})
	}
	return rows2(rows), nil
}

// SpeedupTable is SpeedupTableContext without cancellation.
func SpeedupTable(p TraceParams, opt SweepOptions) (string, error) {
	return SpeedupTableContext(context.Background(), p, opt)
}

// MSHRSweepContext is MSHRSweep on a worker pool.
func MSHRSweepContext(ctx context.Context, name string, p TraceParams, entries []int, opt SweepOptions) ([]float64, error) {
	if len(entries) == 0 {
		entries = []int{8, 16, 32, 64}
	}
	accs, err := GenerateTrace(name, p)
	if err != nil {
		return nil, err
	}
	return sweep.Map(ctx, len(entries), opt.engine(),
		func(_ context.Context, i int) (float64, error) {
			cfg := opt.config()
			cfg.Coalescer.MSHR.Entries = entries[i]
			res, err := runMode(name, cfg.Mode, cfg, accs)
			if err != nil {
				return 0, err
			}
			return res.CoalescingEfficiency(), nil
		})
}

// defaultTimeouts is the Figure 14 sweep grid.
func defaultTimeouts() []uint64 { return []uint64{16, 20, 24, 28} }

// FaultSweepRow is one injected-error-rate point of a fault sweep: the
// same trace replayed under all three architectures with the same fault
// seed.
type FaultSweepRow struct {
	BER      float64
	Baseline Result
	DMCOnly  Result
	TwoPhase Result
}

// Speedup is the two-phase runtime improvement over the conventional MHA
// at this error rate.
func (r FaultSweepRow) Speedup() float64 {
	if r.Baseline.RuntimeCycles == 0 {
		return 0
	}
	return 1 - float64(r.TwoPhase.RuntimeCycles)/float64(r.Baseline.RuntimeCycles)
}

// defaultBERs is the fault sweep grid: clean link up to one error per
// ~10^4 bits.
func defaultBERs() []float64 { return []float64{0, 1e-7, 1e-6, 1e-5, 1e-4} }

// FaultSweep runs one benchmark across injected link error rates under all
// three architectures; see FaultSweepContext.
func FaultSweep(name string, p TraceParams, seed uint64, bers []float64) ([]FaultSweepRow, error) {
	return FaultSweepContext(context.Background(), name, p, seed, bers, SweepOptions{})
}

// FaultSweepContext fans the (error rate × mode) grid across the worker
// pool. Fault decisions are keyed by (seed, link, packet serial), so the
// rows are byte-identical at any worker count. A nil bers uses the default
// grid.
func FaultSweepContext(ctx context.Context, name string, p TraceParams, seed uint64, bers []float64, opt SweepOptions) ([]FaultSweepRow, error) {
	if len(bers) == 0 {
		bers = defaultBERs()
	}
	accs, err := GenerateTrace(name, p)
	if err != nil {
		return nil, err
	}
	nModes := len(runAllModes)
	cells, err := sweep.Map(ctx, len(bers)*nModes, opt.engine(),
		func(_ context.Context, i int) (Result, error) {
			b, m := i/nModes, i%nModes
			cfg := opt.config()
			cfg.HMC.Fault.Seed = seed
			cfg.HMC.Fault.BER = bers[b]
			return runMode(name, runAllModes[m], cfg, accs)
		})
	if err != nil {
		return nil, err
	}
	rows := make([]FaultSweepRow, len(bers))
	for b := range bers {
		rows[b] = FaultSweepRow{
			BER:      bers[b],
			Baseline: cells[b*nModes+0],
			DMCOnly:  cells[b*nModes+1],
			TwoPhase: cells[b*nModes+2],
		}
	}
	return rows, nil
}
