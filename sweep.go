package hmccoal

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"hmccoal/internal/metrics"
	"hmccoal/internal/sweep"
	"hmccoal/internal/workloads"
)

// SweepOptions tunes the parallel evaluation sweeps (RunAllContext,
// Figure14TableContext, …).
type SweepOptions struct {
	// Workers is the simulation worker-pool size. 0 uses every core
	// (GOMAXPROCS); 1 reproduces the old strictly serial pipeline. The
	// results are byte-identical at any worker count — only wall-clock
	// changes.
	Workers int
	// Batch is the number of simulations one batch engine advances in
	// lockstep (sim.RunBatch lanes). 0 or 1 keeps the one-job-one-system
	// path; at K ≥ 2 each worker pulls groups of jobs and runs them on K
	// reusable lanes, so a dense sweep pays system construction per lane
	// instead of per job. Results are byte-identical at any batch width —
	// like Workers, Batch only changes wall-clock.
	Batch int
	// Progress, when non-nil, is called after each simulation job
	// completes with the number of finished jobs and the grid size.
	// Calls are serialized across workers.
	Progress func(done, total int)
	// Checks enables the runtime invariant checker in every simulation of
	// the sweep. Results are identical either way (see sim.Config.Checks);
	// a violated conservation law surfaces as that job's error instead of
	// silent corruption.
	Checks bool
	// Checkpoint, when non-empty, persists each completed job to a JSONL
	// file so an interrupted sweep resumes without recomputing (see
	// sweep.Options.Checkpoint). Use a distinct file per sweep grid; the
	// format is per-job, so batched and unbatched sweeps resume from each
	// other's checkpoints.
	Checkpoint string
	// Backend selects the memory device for every simulation of the sweep
	// (see Config.Backend). The zero value is the default HMC model; its
	// checkpoint lines stay untagged, so pre-backend checkpoints keep
	// resuming (sweep.Options.Backend).
	Backend BackendKind
	// Frontend and Sched select the coalescing front-end and its issue
	// policy for every simulation of the sweep (see Config.Frontend,
	// Config.Sched). Like Backend, the zero values (two-phase, FR-FCFS)
	// leave checkpoint lines untagged so pre-frontend checkpoints keep
	// resuming; the StrideLadder grid sweeps both axes itself and ignores
	// these.
	Frontend FrontendKind
	Sched    SchedKind
	// Dispatch, when non-nil, ships every job group to external executors
	// instead of running it in-process — the distributed sweep path (see
	// Dispatcher and internal/dsweep). Workers then bounds in-flight
	// groups rather than local simulation goroutines; checkpointing,
	// progress and result assembly are unchanged, and the output stays
	// byte-identical to the in-process run.
	Dispatch Dispatcher
}

func (o SweepOptions) engine() sweep.Options {
	opt := sweep.Options{
		Workers:    o.Workers,
		Progress:   o.Progress,
		Checkpoint: o.Checkpoint,
		Remote:     o.Dispatch != nil,
	}
	if o.Backend != BackendHMC {
		opt.Backend = o.Backend.String()
	}
	if o.Frontend != FrontendTwoPhase {
		opt.Frontend = o.Frontend.String()
	}
	if o.Sched != SchedFRFCFS {
		opt.Sched = o.Sched.String()
	}
	return opt
}

// spec is the serializable description of one of this option set's grids.
func (o SweepOptions) spec(kind SweepKind, p TraceParams) SweepSpec {
	s := SweepSpec{Kind: kind, Params: p, Checks: o.Checks, Batch: o.Batch}
	if o.Backend != BackendHMC {
		s.Backend = o.Backend.String()
	}
	if o.Frontend != FrontendTwoPhase {
		s.Frontend = o.Frontend.String()
	}
	if o.Sched != SchedFRFCFS {
		s.Sched = o.Sched.String()
	}
	return s
}

// batchLaneJobs is how many jobs each batch lane serves on average: a
// batched sweep hands each engine invocation Batch×batchLaneJobs jobs on
// Batch lanes, so every lane retires and refills several times — that
// refill (System.Reset instead of NewSystem) is where the batch engine's
// throughput comes from. Fresh builds per group equal the lane count, so
// the reuse fraction is 1-1/batchLaneJobs; eight keeps seven of every
// eight jobs on recycled systems while a group stays small enough that a
// failed group forfeits only a modest slice of checkpoint progress — and,
// distributed, a lost worker forfeits only one group's recompute.
const batchLaneJobs = 8

// groupSize is the number of grid jobs handed to one engine invocation —
// local batch group or remote dispatch unit alike.
func (o SweepOptions) groupSize() int {
	if o.Batch <= 1 {
		return 1
	}
	return o.Batch * batchLaneJobs
}

// runMode builds a fresh system (sim.System is single-use) and replays the
// trace under the given miss-handling architecture.
func runMode(name string, m Mode, cfg Config, accs []Access) (Result, error) {
	cfg.Mode = m
	sys, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := sys.Run(accs)
	if err != nil {
		return Result{}, fmt.Errorf("%s/%v: %w", name, m, err)
	}
	return res, nil
}

// traceTable shares each benchmark's lazily generated trace — and its CSR
// bucketing — across the sweep's jobs, and releases both once the
// benchmark's last job completes, so a long sweep holds only the traces
// still in flight instead of pinning every trace it ever generated.
type traceTable struct {
	names []string
	p     TraceParams
	cpus  int // the simulated systems' CPU count (for the shared index)
	cells []traceCell
}

// traceCell is one benchmark's shared trace with its remaining-jobs
// refcount.
type traceCell struct {
	mu      sync.Mutex
	accs    []Access
	idx     *TraceIndex
	err     error
	built   bool
	pending int // jobs not yet completed; trace and index drop at 0
}

// newTraceTable builds the per-benchmark trace cells for a sweep whose
// grid runs jobsPer jobs against each benchmark's trace.
func newTraceTable(names []string, p TraceParams, cpus, jobsPer int) *traceTable {
	t := &traceTable{names: names, p: p, cpus: cpus, cells: make([]traceCell, len(names))}
	for i := range t.cells {
		t.cells[i].pending = jobsPer
	}
	return t
}

// get returns benchmark b's trace and shared index, generating both on
// first use. Distinct benchmarks generate concurrently; same-benchmark
// callers serialize on the cell.
func (t *traceTable) get(b int) ([]Access, *TraceIndex, error) {
	c := &t.cells[b]
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.built {
		c.built = true
		c.accs, c.err = GenerateTrace(t.names[b], t.p)
		if c.err == nil {
			c.idx, c.err = NewTraceIndex(c.accs, t.cpus)
		}
	}
	return c.accs, c.idx, c.err
}

// done retires one of benchmark b's jobs, dropping the trace and index
// when the last one completes. Jobs restored from a checkpoint never call
// done; if no other job of that benchmark runs, its cell was never
// generated and holds nothing, and if one does, the cell stays resident
// for the sweep's remainder — no worse than the old always-pinned table.
func (t *traceTable) done(b int) {
	c := &t.cells[b]
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending--; c.pending == 0 {
		c.accs, c.idx = nil, nil
	}
}

// resident reports whether benchmark b's trace is currently held (test
// hook for the release contract).
func (t *traceTable) resident(b int) bool {
	c := &t.cells[b]
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.accs != nil
}

// mapSpec fans a sweep grid across the engine. In-process, each group of
// grid indices runs through runSpecGroup on traces shared (and released)
// by a refcounted table; with opt.Dispatch set, the same groups ship to
// remote executors as (spec, indices) pairs and come back as JSON cells.
// Either way post maps each cell to the driver's own type on the calling
// process — so the checkpoint format, the progress cadence and the final
// output are identical across local, batched and distributed runs.
func mapSpec[T any](ctx context.Context, spec SweepSpec, opt SweepOptions, post func(i int, c SweepCell) T) ([]T, error) {
	g, err := spec.compile()
	if err != nil {
		return nil, err
	}
	if opt.Dispatch != nil {
		raw, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("hmccoal: encode sweep spec: %w", err)
		}
		return sweep.MapBatch(ctx, g.n(), opt.groupSize(), opt.engine(),
			func(ctx context.Context, idxs []int) ([]T, error) {
				cells, err := opt.Dispatch.RunGroup(ctx, raw, idxs)
				if err != nil {
					return nil, err
				}
				if len(cells) != len(idxs) {
					return nil, fmt.Errorf("hmccoal: dispatcher returned %d cells for %d jobs", len(cells), len(idxs))
				}
				out := make([]T, len(idxs))
				for k, i := range idxs {
					var c SweepCell
					if err := json.Unmarshal(cells[k], &c); err != nil {
						return nil, fmt.Errorf("hmccoal: decode cell %d: %w", i, err)
					}
					out[k] = post(i, c)
				}
				return out, nil
			})
	}
	tr := newTraceTable(g.benches, spec.Params, g.base.Hierarchy.CPUs, g.perBench)
	return sweep.MapBatch(ctx, g.n(), opt.groupSize(), opt.engine(),
		func(_ context.Context, idxs []int) ([]T, error) {
			cells, err := runSpecGroup(g, spec.Batch, idxs, tr.get)
			if err != nil {
				return nil, err
			}
			out := make([]T, len(idxs))
			for k, i := range idxs {
				out[k] = post(i, cells[k])
				tr.done(i / g.perBench)
			}
			return out, nil
		})
}

// The RunAll grid runs four independent jobs per benchmark: the three
// architectures of Figure 8 plus the payload-granularity analysis.
const runAllKinds = 4

var runAllModes = [3]Mode{ModeBaseline, ModeDMCOnly, ModeTwoPhase}

// RunAllContext executes every benchmark under all three architectures on
// a worker pool, fanning the (benchmark × mode) and (benchmark × payload
// analysis) jobs across opt.Workers goroutines — batched onto shared
// engine lanes when opt.Batch is set, or shipped to distributed workers
// when opt.Dispatch is. Each benchmark's trace is generated and
// CSR-bucketed once per process, shared by its four jobs, and released
// when the last of them completes. Results are in figure order regardless
// of completion order; a cancelled ctx or the first job error aborts the
// sweep.
func RunAllContext(ctx context.Context, p TraceParams, opt SweepOptions) ([]BenchmarkRun, error) {
	names := Benchmarks()
	spec := opt.spec(SweepRunAll, p)
	spec.Benches = names
	cells, err := mapSpec(ctx, spec, opt, func(_ int, c SweepCell) SweepCell { return c })
	if err != nil {
		return nil, err
	}
	runs := make([]BenchmarkRun, len(names))
	for b, name := range names {
		runs[b] = BenchmarkRun{
			Name:     name,
			Baseline: cells[b*runAllKinds+0].Res,
			DMCOnly:  cells[b*runAllKinds+1].Res,
			TwoPhase: cells[b*runAllKinds+2].Res,
			Payload:  cells[b*runAllKinds+3].Pay,
		}
	}
	return runs, nil
}

// latencyCell maps a sweep cell to the timeout sweeps' metric.
func latencyCell(_ int, c SweepCell) float64 {
	return c.Res.Coalescer.AvgRequestLatencyNs(c.Res.ClockGHz)
}

// TimeoutSweepContext is TimeoutSweep on a worker pool: the benchmark's
// trace is generated and bucketed once and the per-timeout runs fan out
// in parallel (batched onto shared lanes when opt.Batch is set).
func TimeoutSweepContext(ctx context.Context, name string, p TraceParams, timeouts []uint64, opt SweepOptions) ([]float64, error) {
	if len(timeouts) == 0 {
		timeouts = defaultTimeouts()
	}
	spec := opt.spec(SweepTimeout, p)
	spec.Bench, spec.Timeouts = name, timeouts
	return mapSpec(ctx, spec, opt, latencyCell)
}

// Figure14TableContext renders the timeout sweep for every benchmark,
// fanning the full (benchmark × timeout) grid across the worker pool with
// one shared trace per benchmark, released as benchmarks complete.
func Figure14TableContext(ctx context.Context, p TraceParams, timeouts []uint64, opt SweepOptions) (string, error) {
	if len(timeouts) == 0 {
		timeouts = defaultTimeouts()
	}
	names := Benchmarks()
	spec := opt.spec(SweepFig14, p)
	spec.Benches, spec.Timeouts = names, timeouts
	lat, err := mapSpec(ctx, spec, opt, latencyCell)
	if err != nil {
		return "", err
	}
	header := []string{"benchmark"}
	for _, to := range timeouts {
		header = append(header, fmt.Sprintf("T=%d", to))
	}
	rows := [][]string{header}
	for b, name := range names {
		row := []string{name}
		for t := range timeouts {
			row = append(row, metrics.Ns(lat[b*len(timeouts)+t]))
		}
		rows = append(rows, row)
	}
	return rows2(rows), nil
}

// speedupModes is the SpeedupTable grid: the conventional MHA against the
// full coalescer.
var speedupModes = [2]Mode{ModeBaseline, ModeTwoPhase}

// SpeedupTableContext renders the Figure 15 runtime-improvement study on a
// chosen memory backend: every benchmark under the conventional MHA and
// the two-phase coalescer, with runtimes and the relative improvement. The
// (benchmark × mode) grid fans across the worker pool with one shared
// trace per benchmark. Unlike Figure15Table it carries a backend column,
// so ddr/ideal runs are comparable against the HMC rows side by side.
func SpeedupTableContext(ctx context.Context, p TraceParams, opt SweepOptions) (string, error) {
	names := Benchmarks()
	nModes := len(speedupModes)
	spec := opt.spec(SweepSpeedup, p)
	spec.Benches = names
	cells, err := mapSpec(ctx, spec, opt, func(_ int, c SweepCell) Result { return c.Res })
	if err != nil {
		return "", err
	}
	rows := [][]string{{"benchmark", "backend", "MSHR-based", "two-phase", "improvement"}}
	var sum float64
	for b, name := range names {
		base, two := cells[b*nModes+0], cells[b*nModes+1]
		r := BenchmarkRun{Baseline: base, TwoPhase: two}
		rows = append(rows, []string{
			name,
			opt.Backend.String(),
			fmt.Sprintf("%d cyc", base.RuntimeCycles),
			fmt.Sprintf("%d cyc", two.RuntimeCycles),
			metrics.Pct(r.Speedup()),
		})
		sum += r.Speedup()
	}
	if len(names) > 0 {
		rows = append(rows, []string{"average", opt.Backend.String(), "", "", metrics.Pct(sum / float64(len(names)))})
	}
	return rows2(rows), nil
}

// SpeedupTable is SpeedupTableContext without cancellation.
func SpeedupTable(p TraceParams, opt SweepOptions) (string, error) {
	return SpeedupTableContext(context.Background(), p, opt)
}

// MSHRSweepContext is MSHRSweep on a worker pool.
func MSHRSweepContext(ctx context.Context, name string, p TraceParams, entries []int, opt SweepOptions) ([]float64, error) {
	if len(entries) == 0 {
		entries = []int{8, 16, 32, 64}
	}
	spec := opt.spec(SweepMSHR, p)
	spec.Bench, spec.Entries = name, entries
	return mapSpec(ctx, spec, opt, func(_ int, c SweepCell) float64 { return c.Res.CoalescingEfficiency() })
}

// defaultTimeouts is the Figure 14 sweep grid.
func defaultTimeouts() []uint64 { return []uint64{16, 20, 24, 28} }

// FaultSweepRow is one injected-error-rate point of a fault sweep: the
// same trace replayed under all three architectures with the same fault
// seed.
type FaultSweepRow struct {
	BER      float64
	Baseline Result
	DMCOnly  Result
	TwoPhase Result
}

// Speedup is the two-phase runtime improvement over the conventional MHA
// at this error rate. It returns 0 when the row has no baseline data
// (Baseline.RuntimeCycles == 0); HasData distinguishes that case from a
// genuine zero speedup.
func (r FaultSweepRow) Speedup() float64 {
	if !r.HasData() {
		return 0
	}
	return 1 - float64(r.TwoPhase.RuntimeCycles)/float64(r.Baseline.RuntimeCycles)
}

// HasData reports whether the row holds actual runs: a zero baseline
// runtime means the row's simulations never executed (a partially
// restored or aborted sweep), so ratios over it are meaningless.
func (r FaultSweepRow) HasData() bool { return r.Baseline.RuntimeCycles != 0 }

// defaultBERs is the fault sweep grid: clean link up to one error per
// ~10^4 bits.
func defaultBERs() []float64 { return []float64{0, 1e-7, 1e-6, 1e-5, 1e-4} }

// FaultSweep runs one benchmark across injected link error rates under all
// three architectures; see FaultSweepContext.
func FaultSweep(name string, p TraceParams, seed uint64, bers []float64) ([]FaultSweepRow, error) {
	return FaultSweepContext(context.Background(), name, p, seed, bers, SweepOptions{})
}

// FaultSweepContext fans the (error rate × mode) grid across the worker
// pool. Fault decisions are keyed by (seed, link, packet serial), so the
// rows are byte-identical at any worker count and batch width. A nil bers
// uses the default grid.
func FaultSweepContext(ctx context.Context, name string, p TraceParams, seed uint64, bers []float64, opt SweepOptions) ([]FaultSweepRow, error) {
	if len(bers) == 0 {
		bers = defaultBERs()
	}
	nModes := len(runAllModes)
	spec := opt.spec(SweepFault, p)
	spec.Bench, spec.BERs, spec.Seed = name, bers, seed
	cells, err := mapSpec(ctx, spec, opt, func(_ int, c SweepCell) Result { return c.Res })
	if err != nil {
		return nil, err
	}
	rows := make([]FaultSweepRow, len(bers))
	for b := range bers {
		rows[b] = FaultSweepRow{
			BER:      bers[b],
			Baseline: cells[b*nModes+0],
			DMCOnly:  cells[b*nModes+1],
			TwoPhase: cells[b*nModes+2],
		}
	}
	return rows, nil
}

// strideCombos is the front-end × scheduler axis of the stride-ladder
// grid, in display order: both issue policies under the paper's two-phase
// coalescer, then under the GPU-style warp coalescing unit.
var strideCombos = [4]struct {
	fe    FrontendKind
	sched SchedKind
}{
	{FrontendTwoPhase, SchedFRFCFS},
	{FrontendTwoPhase, SchedHetero},
	{FrontendWarp, SchedFRFCFS},
	{FrontendWarp, SchedHetero},
}

// StrideRun is one stride microbenchmark replayed under every front-end ×
// scheduler combination, results in strideCombos order.
type StrideRun struct {
	Name    string
	Results [len(strideCombos)]Result
}

// StrideLadderContext runs the stride microbenchmark ladder (stride1 …
// stride32) under every {front-end × scheduler} combination: the classic
// GPU memory-coalescing efficiency staircase, measured on both the
// two-phase coalescer and the warp coalescing unit with each issue
// policy. The (stride × combination) grid fans across the worker pool
// with one shared trace per stride, and like every sweep the rows are
// byte-identical at any worker count, batch width or under distributed
// dispatch.
func StrideLadderContext(ctx context.Context, p TraceParams, opt SweepOptions) ([]StrideRun, error) {
	// The grid carries the front-end × scheduler axes in-band — every
	// job's configuration and name come from its combo — so option-level
	// tags would only mislabel its checkpoint lines: drop them.
	opt.Frontend, opt.Sched = FrontendTwoPhase, SchedFRFCFS
	names := workloads.StrideNames()
	spec := opt.spec(SweepStride, p)
	spec.Benches = names
	cells, err := mapSpec(ctx, spec, opt, func(_ int, c SweepCell) Result { return c.Res })
	if err != nil {
		return nil, err
	}
	n := len(strideCombos)
	runs := make([]StrideRun, len(names))
	for b, name := range names {
		runs[b].Name = name
		copy(runs[b].Results[:], cells[b*n:(b+1)*n])
	}
	return runs, nil
}

// StrideLadder is StrideLadderContext without cancellation.
func StrideLadder(p TraceParams, opt SweepOptions) ([]StrideRun, error) {
	return StrideLadderContext(context.Background(), p, opt)
}
