package hmccoal

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"reflect"
	"testing"
	"time"

	"hmccoal/internal/dsweep"
)

// startTestCoordinator serves a dsweep coordinator on an ephemeral port
// and returns it with its address.
func startTestCoordinator(t *testing.T, opt dsweep.Options) (*dsweep.Coordinator, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := dsweep.NewCoordinator(opt)
	go coord.Serve(ln)
	t.Cleanup(func() { coord.Close() })
	return coord, ln.Addr().String()
}

// startTestWorkers runs n in-process sweep workers against the
// coordinator, each with the real worker-side runner.
func startTestWorkers(t *testing.T, addr string, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < n; i++ {
		go dsweep.Work(ctx, addr, NewSweepRunner().Run, dsweep.WorkOptions{Name: "test-worker"})
	}
}

// SweepRunner.Run in package hmccoal has the GroupRunner signature
// dsweep.Work expects; this assignment pins that contract at compile time.
var _ dsweep.GroupRunner = NewSweepRunner().Run

// TestDistributedSweepDeterminism is the distribution tentpole's
// correctness contract: a sweep dispatched to remote workers must produce
// byte-identical results to the local -workers 1 pipeline.
func TestDistributedSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	p := sweepTestParams()
	bers := []float64{0, 1e-5}

	localRows, err := FaultSweepContext(context.Background(), "FT", p, 3, bers, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	localTable, err := Figure14TableContext(context.Background(), p, []uint64{16, 28}, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	coord, addr := startTestCoordinator(t, dsweep.Options{})
	startTestWorkers(t, addr, 2)
	opt := SweepOptions{Batch: 2, Dispatch: coord}

	distRows, err := FaultSweepContext(context.Background(), "FT", p, 3, bers, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(localRows, distRows) {
		t.Fatal("distributed fault sweep differs from the local -workers 1 sweep")
	}
	a, _ := json.Marshal(localRows)
	b, _ := json.Marshal(distRows)
	if !bytes.Equal(a, b) {
		t.Fatal("distributed fault sweep serializes differently from the local sweep")
	}

	distTable, err := Figure14TableContext(context.Background(), p, []uint64{16, 28}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if distTable != localTable {
		t.Fatalf("distributed Figure 14 table differs:\n%s\nvs\n%s", distTable, localTable)
	}
}

// crashNextWorker connects a protocol-conformant worker that takes one
// job group and drops dead (connection cut mid-lease), exercising the
// coordinator's requeue path with the exact wire traffic a killed worker
// process produces. It returns once the group has been taken.
func crashNextWorker(t *testing.T, addr string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hello, err := json.Marshal(map[string]any{"proto": 1, "name": "crash-test"})
	if err != nil {
		t.Fatal(err)
	}
	if err := dsweep.WriteFrame(conn, dsweep.MsgHello, hello); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if typ, _, err := dsweep.ReadFrame(conn); err != nil || typ != dsweep.MsgHello {
		t.Fatalf("handshake reply: (%v, %v)", typ, err)
	}
	if err := dsweep.WriteFrame(conn, dsweep.MsgReady, nil); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := dsweep.ReadFrame(conn); err != nil || typ != dsweep.MsgJob {
		t.Fatalf("expected a job, got (%v, %v)", typ, err)
	}
	conn.Close() // crash with the group leased
}

// TestDistributedWorkerKillLosesNoJobs kills a worker mid-group and
// checks the coordinator's recovery end to end: the group is requeued to
// a surviving worker, the final rows match the single-process run
// byte-for-byte, and the checkpoint holds every job exactly once.
func TestDistributedWorkerKillLosesNoJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	p := sweepTestParams()
	bers := []float64{0, 1e-5}

	local, err := FaultSweepContext(context.Background(), "FT", p, 3, bers, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	coord, addr := startTestCoordinator(t, dsweep.Options{})
	ckpt := t.TempDir() + "/dist.jsonl"
	opt := SweepOptions{Batch: 2, Dispatch: coord, Checkpoint: ckpt}

	// The first worker to connect takes the whole batch group and dies;
	// the healthy worker started after it must pick up the requeue.
	done := make(chan struct{})
	go func() {
		defer close(done)
		crashNextWorker(t, addr)
		startTestWorkers(t, addr, 1)
	}()

	dist, err := FaultSweepContext(context.Background(), "FT", p, 3, bers, opt)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	a, _ := json.Marshal(local)
	b, _ := json.Marshal(dist)
	if !bytes.Equal(a, b) {
		t.Fatal("rows after a worker kill differ from the single-process run")
	}

	// The checkpoint must hold each grid index exactly once — the killed
	// worker's forfeited group may not leave conflicting duplicates.
	n := len(bers) * 3
	seen := make(map[int]int)
	readCheckpointJobs(t, ckpt, n, seen)
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("checkpoint records job %d %d times, want exactly once", i, seen[i])
		}
	}

	// And resuming from it recomputes nothing.
	recomputed := 0
	resumed, err := FaultSweepContext(context.Background(), "FT", p, 3, bers, SweepOptions{
		Workers: 1, Checkpoint: ckpt,
		Progress: func(done, total int) {
			if done > total {
				t.Errorf("progress overshot: %d/%d", done, total)
			}
			recomputed++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if recomputed != 1 { // one up-front restored-jobs report, zero per-job ticks
		t.Errorf("resume made %d progress calls, want 1 (all jobs restored)", recomputed)
	}
	c, _ := json.Marshal(resumed)
	if !bytes.Equal(a, c) {
		t.Fatal("rows resumed from the post-kill checkpoint differ")
	}
}

// readCheckpointJobs counts how often each job index appears in a JSONL
// checkpoint written for an n-job grid.
func readCheckpointJobs(t *testing.T, path string, n int, seen map[int]int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var line struct {
			Job int `json:"job"`
			N   int `json:"n"`
		}
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("torn checkpoint line %q: %v", raw, err)
		}
		if line.N != n {
			t.Fatalf("checkpoint line for a %d-job grid in a %d-job sweep", line.N, n)
		}
		seen[line.Job]++
	}
}
