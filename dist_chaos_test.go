package hmccoal

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hmccoal/internal/dsweep"
	"hmccoal/internal/netchaos"
)

// chaosWorkers runs n in-process sweep workers whose coordinator
// connections pass through the given chaos injector, with a reconnect
// budget generous enough that the campaign — not the budget — decides
// when they stop.
func chaosWorkers(t *testing.T, addr string, n int, inj *netchaos.Injector) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	var d net.Dialer
	dial := inj.Dialer(func(ctx context.Context, addr string) (net.Conn, error) {
		return d.DialContext(ctx, "tcp", addr)
	})
	for i := 0; i < n; i++ {
		go dsweep.Work(ctx, addr, NewSweepRunner().Run, dsweep.WorkOptions{
			Name:       fmt.Sprintf("chaos-%d", i),
			Dial:       dial,
			DialRetry:  30 * time.Second,
			Reconnects: 1000,
		})
	}
}

// TestChaosSweepDeterminism is the chaos soak: a full distributed sweep
// runs with deterministic network-fault injection on BOTH sides of every
// connection — resets, corrupted frames, short writes, failed dials,
// latency — and the campaign must still produce rows byte-identical to
// the serial -workers 1 run, with each grid index checkpointed exactly
// once. The faults are real (the injectors' counters prove they fired);
// the sweep plane's requeue/reconnect machinery is what absorbs them.
func TestChaosSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	p := sweepTestParams()
	bers := []float64{0, 1e-5}

	local, err := FaultSweepContext(context.Background(), "FT", p, 3, bers, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	localTable, err := Figure14TableContext(context.Background(), p, []uint64{16, 28}, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator side: every accepted worker connection is chaos-wrapped.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coordInj, err := netchaos.New(netchaos.Config{Seed: 11, Reset: 0.05, Corrupt: 0.03, Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Chaos multiplies worker losses per group, so the requeue bound must
	// out-budget the fault rate: attempts are about campaign-killing
	// determinism (a group that crashes its host), not transient faults.
	coord := dsweep.NewCoordinator(dsweep.Options{MaxAttempts: 100})
	go coord.Serve(coordInj.Listen(ln))
	t.Cleanup(func() { coord.Close() })

	// Worker side: dials fail, established connections reset and tear.
	workInj, err := netchaos.New(netchaos.Config{Seed: 12, Reset: 0.05, ShortWrite: 0.01, DialFail: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	chaosWorkers(t, ln.Addr().String(), 2, workInj)

	// Batch 0 dispatches every job as its own group — the most protocol
	// round-trips, so the soak exercises the wire as hard as the grid
	// allows (Batch 2 would fold this small grid into one group).
	ckpt := t.TempDir() + "/chaos.jsonl"
	rows, err := FaultSweepContext(context.Background(), "FT", p, 3, bers,
		SweepOptions{Dispatch: coord, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(local)
	b, _ := json.Marshal(rows)
	if !bytes.Equal(a, b) {
		t.Fatal("chaos-soaked fault sweep differs from the serial run")
	}
	table, err := Figure14TableContext(context.Background(), p, []uint64{16, 28},
		SweepOptions{Batch: 2, Dispatch: coord})
	if err != nil {
		t.Fatal(err)
	}
	if table != localTable {
		t.Fatalf("chaos-soaked Figure 14 table differs:\n%s\nvs\n%s", table, localTable)
	}

	// Exactly-once checkpoint despite every requeue and reconnect.
	n := len(bers) * 3
	seen := make(map[int]int)
	readCheckpointJobs(t, ckpt, n, seen)
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("checkpoint records job %d %d times, want exactly once", i, seen[i])
		}
	}

	// The soak is vacuous if no fault ever fired.
	cs, ws := coordInj.Stats(), workInj.Stats()
	faults := cs.Resets + cs.Corrupts + cs.ShortWrites + cs.DialFails +
		ws.Resets + ws.Corrupts + ws.ShortWrites + ws.DialFails
	if faults == 0 {
		t.Fatalf("no network faults fired; coord stats %+v, worker stats %+v", cs, ws)
	}
	t.Logf("chaos soak: coord %+v, workers %+v, coordinator status: %s", cs, ws, coord.Status())
}

// TestCoordinatorRestartResume is the coordinator-crash recovery story
// end to end: a campaign is interrupted mid-sweep, the coordinator goes
// away, a new coordinator starts, and rerunning the sweep against it with
// the same checkpoint completes the grid without recomputing restored
// jobs — final rows byte-identical to the serial run.
func TestCoordinatorRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	p := sweepTestParams()
	bers := []float64{0, 1e-5}
	local, err := FaultSweepContext(context.Background(), "FT", p, 3, bers, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(local)
	ckpt := t.TempDir() + "/restart.jsonl"

	// First campaign: the worker's runner completes exactly one group and
	// gates the rest, the sweep is cancelled, and the coordinator shuts
	// down with the grid unfinished — a deterministic mid-campaign crash.
	coordA, addrA := startTestCoordinator(t, dsweep.Options{})
	gate := make(chan struct{})
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()
	runner := NewSweepRunner()
	var groups int32
	wctx, wcancel := context.WithCancel(context.Background())
	t.Cleanup(wcancel)
	go dsweep.Work(wctx, addrA, func(ctx context.Context, spec []byte, idxs []int) ([]json.RawMessage, error) {
		if atomic.AddInt32(&groups, 1) > 1 {
			<-gate // hold every group after the first until the test releases them
		}
		return runner.Run(ctx, spec, idxs)
	}, dsweep.WorkOptions{Name: "doomed-era"})

	// Batch 0 keeps every job its own dispatch group, so the single-slot
	// worker completes exactly one job before the gate holds the rest.
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	_, err = FaultSweepContext(sctx, "FT", p, 3, bers, SweepOptions{
		Dispatch: coordA, Checkpoint: ckpt,
		Progress: func(done, total int) {
			if done > 0 && done < total {
				scancel()
			}
		},
	})
	if err == nil {
		t.Fatal("gated sweep completed; the interruption never landed")
	}
	wcancel()
	close(gate)
	coordA.Close()

	// The interrupted checkpoint must hold some, but not all, of the grid.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	restored := len(bytes.Fields(data))
	n := len(bers) * 3
	if restored == 0 || restored >= n {
		t.Fatalf("interrupted checkpoint holds %d of %d jobs", restored, n)
	}

	// Second campaign: a fresh coordinator, a fresh worker, same
	// checkpoint. Restored jobs are not recomputed.
	coordB, addrB := startTestCoordinator(t, dsweep.Options{})
	startTestWorkers(t, addrB, 1)
	rows, err := FaultSweepContext(context.Background(), "FT", p, 3, bers,
		SweepOptions{Batch: 2, Dispatch: coordB, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(rows)
	if !bytes.Equal(a, b) {
		t.Fatal("rows resumed under a restarted coordinator differ from the serial run")
	}
	seen := make(map[int]int)
	readCheckpointJobs(t, ckpt, n, seen)
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("checkpoint records job %d %d times after the restart, want exactly once", i, seen[i])
		}
	}
}

// TestBadTokenWorkerDoesNotDisturbCampaign runs a campaign on an
// authenticated coordinator while unauthenticated workers hammer it: the
// intruders are rejected (and counted), the campaign's rows stay
// byte-identical to the serial run.
func TestBadTokenWorkerDoesNotDisturbCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	p := sweepTestParams()
	bers := []float64{0, 1e-5}
	local, err := FaultSweepContext(context.Background(), "FT", p, 3, bers, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	coord, addr := startTestCoordinator(t, dsweep.Options{Token: "s3cret"})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go dsweep.Work(ctx, addr, NewSweepRunner().Run, dsweep.WorkOptions{Name: "auth", Token: "s3cret"})

	// Intruders: wrong token, then no token, in a loop for the whole
	// campaign. Each must be turned away with a Bye and a counted reject.
	intruders := make(chan struct{})
	go func() {
		defer close(intruders)
		for i := 0; i < 10; i++ {
			if ctx.Err() != nil {
				return
			}
			ictx, icancel := context.WithTimeout(ctx, 5*time.Second)
			err := dsweep.Work(ictx, addr, NewSweepRunner().Run, dsweep.WorkOptions{
				Name: "intruder", Token: strings.Repeat("x", i), Reconnects: -1,
			})
			icancel()
			if err == nil && ctx.Err() == nil {
				t.Error("unauthenticated worker was accepted")
				return
			}
		}
	}()

	rows, err := FaultSweepContext(context.Background(), "FT", p, 3, bers,
		SweepOptions{Batch: 2, Dispatch: coord})
	if err != nil {
		t.Fatal(err)
	}
	<-intruders
	a, _ := json.Marshal(local)
	b, _ := json.Marshal(rows)
	if !bytes.Equal(a, b) {
		t.Fatal("campaign rows changed while intruders hammered the coordinator")
	}
	st := coord.Status()
	if st.AuthRejects < 10 {
		t.Fatalf("auth rejects = %d, want ≥ 10\n%s", st.AuthRejects, st)
	}
}
